"""Content-addressed artifact caching for the explanation service.

Every cached artifact is addressed by a *fingerprint*: a stable hash of the
content that produced it (databases, queries, attribute matches, pipeline
configuration).  Identical inputs therefore share one cache entry no matter
how many requests reference them, and any change to an input changes its
fingerprint, so stale artifacts can never be served.

:class:`ArtifactCache` is a thread-safe LRU map with hit/miss/eviction
statistics and an optional disk spill directory: entries evicted from memory
are pickled to disk and transparently reloaded on the next request, which
keeps warm-cache behaviour across memory pressure (and, for picklable
artifacts, across processes).
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

_MISSING = object()


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

def _canonical(value) -> object:
    """A deterministic, order-independent description of a value.

    Dicts are sorted by key, sets by repr; dataclasses are expanded field by
    field; objects exposing their own ``fingerprint()`` delegate to it.
    Everything else falls back to ``repr`` (deterministic for the value types
    that flow through the pipeline: str, numbers, tuples, enums).
    """
    fingerprint_method = getattr(value, "fingerprint", None)
    if callable(fingerprint_method) and not isinstance(value, type):
        return value.fingerprint()
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((f.name, _canonical(getattr(value, f.name))) for f in fields(value)),
        )
    if isinstance(value, dict):
        return tuple(
            (repr(key), _canonical(item)) for key, item in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(_canonical(item)) for item in value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    return repr(value)


def fingerprint_of(*parts) -> str:
    """A stable sha256 fingerprint of arbitrary (canonicalizable) parts."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(_canonical(part)).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The LRU artifact cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters of one artifact cache (all monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spill_writes: int = 0
    spill_loads: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "spill_writes": self.spill_writes,
            "spill_loads": self.spill_loads,
            "hit_rate": round(self.hit_rate, 4),
        }


class ArtifactCache:
    """A thread-safe LRU cache of content-addressed artifacts.

    ``max_entries`` bounds the in-memory entry count; evicted entries are
    optionally spilled to ``spill_dir`` (pickle files named by fingerprint)
    and reloaded on demand.  Artifacts that fail to pickle are simply dropped
    on eviction -- the cache is an accelerator, never a source of truth.
    """

    def __init__(
        self,
        name: str,
        *,
        max_entries: int = 128,
        spill_dir: str | Path | None = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.name = name
        self.max_entries = max_entries
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()

    # -- core protocol ------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries.keys())

    def get(self, key: str, default=None):
        """The cached artifact for ``key``, or ``default`` (counts hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            spilled = self._load_spill(key)
            if spilled is not _MISSING:
                self.stats.hits += 1
                self.stats.spill_loads += 1
                self._insert(key, spilled)
                return spilled
            self.stats.misses += 1
            return default

    def put(self, key: str, value) -> None:
        with self._lock:
            self._insert(key, value)

    def get_or_compute(self, key: str, factory: Callable[[], object]):
        """Return the cached artifact, computing and caching it on a miss.

        The factory runs outside the lock, so a slow computation never blocks
        readers of other keys; concurrent misses of the *same* key may compute
        twice (both produce identical content-addressed results -- the second
        insert is a no-op overwrite).
        """
        sentinel = self.get(key, _MISSING)
        if sentinel is not _MISSING:
            return sentinel
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries, including this cache's spill files on disk.

        Leaving spill files behind would make "cleared" entries transparently
        reappear on the next ``get``.
        """
        with self._lock:
            self._entries.clear()
            if self.spill_dir is not None:
                for path in self.spill_dir.glob(f"{self.name}-*.pkl"):
                    path.unlink(missing_ok=True)

    # -- internals ----------------------------------------------------------------
    def _insert(self, key: str, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._write_spill(evicted_key, evicted_value)

    def _spill_path(self, key: str) -> Optional[Path]:
        if self.spill_dir is None:
            return None
        return self.spill_dir / f"{self.name}-{key}.pkl"

    def _write_spill(self, key: str, value) -> None:
        path = self._spill_path(key)
        if path is None:
            return
        try:
            path.write_bytes(pickle.dumps(value))
            self.stats.spill_writes += 1
        except Exception:
            # Unpicklable artifacts (e.g. reports holding ad-hoc callables)
            # are dropped; the next request recomputes them.
            path.unlink(missing_ok=True)

    def _load_spill(self, key: str):
        path = self._spill_path(key)
        if path is None or not path.exists():
            return _MISSING
        try:
            return pickle.loads(path.read_bytes())
        except Exception:
            path.unlink(missing_ok=True)
            return _MISSING


class CacheRegistry:
    """The named artifact caches of one service instance, with combined stats."""

    def __init__(self, *, max_entries: int = 128, spill_dir: str | Path | None = None):
        self.max_entries = max_entries
        self.spill_dir = spill_dir
        self._caches: dict[str, ArtifactCache] = {}
        self._lock = threading.Lock()

    def cache(
        self, name: str, *, max_entries: int | None = None, spill: bool = True
    ) -> ArtifactCache:
        """Get or create a named cache.

        ``spill=False`` opts the cache out of the registry's disk spill --
        for artifacts that are cheap to recompute but expensive to pickle
        (e.g. compiled plans, which hold a reference to their database).
        """
        with self._lock:
            if name not in self._caches:
                self._caches[name] = ArtifactCache(
                    name,
                    max_entries=max_entries or self.max_entries,
                    spill_dir=self.spill_dir if spill else None,
                )
            return self._caches[name]

    def caches(self) -> Iterable[ArtifactCache]:
        with self._lock:
            return list(self._caches.values())

    def stats(self) -> dict:
        """Per-cache and aggregate counters, JSON-safe."""
        per_cache = {cache.name: cache.stats.as_dict() for cache in self.caches()}
        totals = CacheStats()
        for cache in self.caches():
            totals.hits += cache.stats.hits
            totals.misses += cache.stats.misses
            totals.evictions += cache.stats.evictions
            totals.spill_writes += cache.stats.spill_writes
            totals.spill_loads += cache.stats.spill_loads
        return {"caches": per_cache, "total": totals.as_dict()}

    def clear(self) -> None:
        for cache in self.caches():
            cache.clear()

"""Content-addressed artifact caching for the explanation service.

Every cached artifact is addressed by a *fingerprint*: a stable hash of the
content that produced it (databases, queries, attribute matches, pipeline
configuration).  Identical inputs therefore share one cache entry no matter
how many requests reference them, and any change to an input changes its
fingerprint, so stale artifacts can never be served.

:class:`ArtifactCache` is a thread-safe LRU map with hit/miss/eviction
statistics and an optional disk spill directory: entries evicted from memory
are pickled to disk and transparently reloaded on the next request, which
keeps warm-cache behaviour across memory pressure (and, for picklable
artifacts, across processes).

The spill tier is **crash-safe**: files are written to a temporary name and
atomically renamed into place (a ``kill -9`` mid-write can never leave a
half-written file under the final name), and every file carries a checksummed
envelope (magic + sha256 + length).  A corrupt or truncated file -- torn
write on a non-atomic filesystem, bit rot, version skew -- is *quarantined*
(renamed to ``*.corrupt``), counted in :attr:`CacheStats.spill_errors` and
treated as an ordinary miss, so a warm cache is never worse than a cold one.

With ``write_through=True`` the spill directory doubles as a **shared
cross-process tier**: every ``put`` is persisted eagerly (not only on
eviction), so a second service instance pointed at the same directory reads
artifacts the first one computed.  No file lock is needed -- keys are content
fingerprints, so concurrent writers of one key produce byte-identical
payloads and the atomic rename makes either write a correct winner.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.reliability.faults import FAULTS

_MISSING = object()

logger = logging.getLogger(__name__)

#: Spill envelope: magic + format version, a sha256 of the pickled payload,
#: and the payload length -- enough to reject truncation, corruption and
#: incompatible formats before unpickling a single byte.
_SPILL_MAGIC = b"RSPILL1\n"
_DIGEST_BYTES = 32
_LENGTH_BYTES = 8


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

def _canonical(value) -> object:
    """A deterministic, order-independent description of a value.

    Dicts are sorted by key, sets by repr; dataclasses are expanded field by
    field; objects exposing their own ``fingerprint()`` delegate to it.
    Everything else falls back to ``repr`` (deterministic for the value types
    that flow through the pipeline: str, numbers, tuples, enums).
    """
    fingerprint_method = getattr(value, "fingerprint", None)
    if callable(fingerprint_method) and not isinstance(value, type):
        return value.fingerprint()
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((f.name, _canonical(getattr(value, f.name))) for f in fields(value)),
        )
    if isinstance(value, dict):
        return tuple(
            (repr(key), _canonical(item)) for key, item in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(_canonical(item)) for item in value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    return repr(value)


def fingerprint_of(*parts) -> str:
    """A stable sha256 fingerprint of arbitrary (canonicalizable) parts."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(_canonical(part)).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The LRU artifact cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters of one artifact cache (all monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spill_writes: int = 0
    spill_loads: int = 0
    spill_errors: int = 0
    invalidations: int = 0
    rewires: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "spill_writes": self.spill_writes,
            "spill_loads": self.spill_loads,
            "spill_errors": self.spill_errors,
            "invalidations": self.invalidations,
            "rewires": self.rewires,
            "hit_rate": round(self.hit_rate, 4),
        }


class ArtifactCache:
    """A thread-safe LRU cache of content-addressed artifacts.

    ``max_entries`` bounds the in-memory entry count; evicted entries are
    optionally spilled to ``spill_dir`` (pickle files named by fingerprint)
    and reloaded on demand.  Artifacts that fail to pickle are simply dropped
    on eviction -- the cache is an accelerator, never a source of truth.
    """

    def __init__(
        self,
        name: str,
        *,
        max_entries: int = 128,
        spill_dir: str | Path | None = None,
        write_through: bool = False,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.name = name
        self.max_entries = max_entries
        self.write_through = write_through
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()

    # -- core protocol ------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries.keys())

    def get(self, key: str, default=None):
        """The cached artifact for ``key``, or ``default`` (counts hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            spilled = self._load_spill(key)
            if spilled is not _MISSING:
                self.stats.hits += 1
                self.stats.spill_loads += 1
                self._insert(key, spilled)
                return spilled
            self.stats.misses += 1
            return default

    def put(self, key: str, value) -> None:
        with self._lock:
            self._insert(key, value)
            if self.write_through:
                # Persist eagerly so other processes sharing the spill
                # directory see this artifact without waiting for an
                # eviction here.
                self._write_spill(key, value)

    def get_or_compute(self, key: str, factory: Callable[[], object]):
        """Return the cached artifact, computing and caching it on a miss.

        The factory runs outside the lock, so a slow computation never blocks
        readers of other keys; concurrent misses of the *same* key may compute
        twice (both produce identical content-addressed results -- the second
        insert is a no-op overwrite).
        """
        sentinel = self.get(key, _MISSING)
        if sentinel is not _MISSING:
            return sentinel
        value = factory()
        self.put(key, value)
        return value

    def invalidate(self, key: str) -> bool:
        """Evict one key everywhere: memory, disk, and sibling processes.

        Used by delta-aware ingest for artifacts whose content actually
        changed.  Beyond dropping the local entry and its spill file, a
        **tombstone** marker (``<name>-<key>.pkl.tomb``) is written through to
        the spill directory: fleet siblings sharing the directory treat a
        tombstoned key as a miss and refuse to (re)spill it, so a lagging pod
        can never resurrect the stale artifact from its memory tier into the
        shared one.  Keys are content fingerprints of their full input set
        (including the database fingerprint), so a tombstoned key addresses
        permanently stale content.  Returns True when an entry or spill file
        actually existed here.
        """
        with self._lock:
            existed = self._entries.pop(key, _MISSING) is not _MISSING
            path = self._spill_path(key)
            if path is not None:
                if path.exists():
                    existed = True
                    path.unlink(missing_ok=True)
                try:
                    self._tomb_path(key).touch()
                except OSError:  # pragma: no cover - tombstone is best-effort
                    pass
            self.stats.invalidations += 1
            return existed

    def rewire(self, old_key: str, new_key: str) -> bool:
        """Re-address one entry whose content is unchanged: same bytes, new key.

        Used by delta-aware ingest for artifacts a delta provably did not
        affect: the artifact computed under the old database fingerprint is
        byte-identical under the new one, so it moves instead of being
        recomputed.  On disk the move is an atomic rename (the artifact is
        never missing under both names); an entry living only in memory is
        written through under the new key first, so sharing siblings see the
        rewired artifact.  Returns True when an entry was actually moved.
        """
        if old_key == new_key:
            return False
        with self._lock:
            value = self._entries.pop(old_key, _MISSING)
            old_path, new_path = self._spill_path(old_key), self._spill_path(new_key)
            if new_path is not None:
                # The new address is legitimately live again; clear any
                # tombstone so the rewired artifact can spill there.
                self._tomb_path(new_key).unlink(missing_ok=True)
            moved = False
            if old_path is not None and old_path.exists():
                try:
                    if new_path.exists():
                        old_path.unlink(missing_ok=True)
                    else:
                        os.replace(old_path, new_path)
                    moved = True
                except OSError:
                    pass
            if value is not _MISSING:
                self._insert(new_key, value)
                if self.write_through and not moved:
                    self._write_spill(new_key, value)
                moved = True
            if moved:
                self.stats.rewires += 1
            return moved

    def flush(self) -> int:
        """Persist every in-memory entry to the spill directory; returns count.

        Used by graceful shutdown: a drained daemon flushes its hot entries
        so a successor process (or a fleet sibling sharing the directory)
        starts warm.  A cache without a spill directory flushes nothing.
        Entries whose spill file already exists are skipped for free
        (content-addressed keys), so repeated flushes are idempotent.
        """
        with self._lock:
            if self.spill_dir is None:
                return 0
            before = self.stats.spill_writes
            for key, value in list(self._entries.items()):
                self._write_spill(key, value)
            return self.stats.spill_writes - before

    def clear(self) -> None:
        """Drop all entries, including this cache's spill files on disk.

        Leaving spill files behind would make "cleared" entries transparently
        reappear on the next ``get``.
        """
        with self._lock:
            self._entries.clear()
            if self.spill_dir is not None:
                for pattern in (
                    f"{self.name}-*.pkl",
                    f"{self.name}-*.pkl.corrupt",
                    f"{self.name}-*.pkl.tomb",
                    f".{self.name}-*.tmp",
                ):
                    for path in self.spill_dir.glob(pattern):
                        path.unlink(missing_ok=True)

    # -- internals ----------------------------------------------------------------
    def _insert(self, key: str, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted_key, evicted_value = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._write_spill(evicted_key, evicted_value)

    def _spill_path(self, key: str) -> Optional[Path]:
        if self.spill_dir is None:
            return None
        return self.spill_dir / f"{self.name}-{key}.pkl"

    def _tomb_path(self, key: str) -> Path:
        return self.spill_dir / f"{self.name}-{key}.pkl.tomb"

    def _write_spill(self, key: str, value) -> None:
        """Spill one evicted entry to disk: envelope + atomic rename.

        The temporary file lives in the same directory (so ``os.replace`` is
        a same-filesystem atomic rename); a crash at any point leaves either
        the previous file or an orphaned ``.tmp`` -- never a torn final file.
        Failures of any kind (unpicklable artifact, full disk, injected
        fault) drop the entry: the cache is an accelerator, never a source
        of truth.
        """
        path = self._spill_path(key)
        if path is None:
            return
        if self._tomb_path(key).exists():
            # The key was invalidated through the shared tier; re-spilling it
            # would resurrect a stale artifact for every sharing sibling.
            return
        if path.exists():
            # Keys are content fingerprints: an existing file for this key
            # already holds exactly this value (written by us earlier, or by
            # another process sharing the directory).  Skipping the rewrite
            # keeps write-through puts and re-evictions cheap.
            return
        tmp_path = path.parent / f".{self.name}-{uuid.uuid4().hex}.tmp"
        try:
            FAULTS.check("cache.spill_write")
            payload = pickle.dumps(value)
            payload = FAULTS.corrupt("cache.spill_write", payload)
            envelope = (
                _SPILL_MAGIC
                + hashlib.sha256(payload).digest()
                + len(payload).to_bytes(_LENGTH_BYTES, "big")
                + payload
            )
            tmp_path.write_bytes(envelope)
            os.replace(tmp_path, path)
            self.stats.spill_writes += 1
        except Exception as exc:
            self.stats.spill_errors += 1
            logger.warning(
                "cache %s: dropping spill of %s (%s: %s)",
                self.name, key[:12], type(exc).__name__, exc,
            )
            tmp_path.unlink(missing_ok=True)

    def _decode_spill(self, raw: bytes):
        """Unwrap one spill envelope; raises ``ValueError`` on any damage."""
        if not raw.startswith(_SPILL_MAGIC):
            raise ValueError("bad spill magic (foreign or pre-envelope file)")
        header_end = len(_SPILL_MAGIC) + _DIGEST_BYTES + _LENGTH_BYTES
        if len(raw) < header_end:
            raise ValueError("truncated spill header")
        digest = raw[len(_SPILL_MAGIC):len(_SPILL_MAGIC) + _DIGEST_BYTES]
        length = int.from_bytes(raw[len(_SPILL_MAGIC) + _DIGEST_BYTES:header_end], "big")
        payload = raw[header_end:]
        if len(payload) != length:
            raise ValueError(f"truncated spill payload ({len(payload)} of {length} bytes)")
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError("spill checksum mismatch")
        return pickle.loads(payload)

    def _load_spill(self, key: str):
        """Load a spilled entry; every failure quarantines the file and misses.

        Quarantine renames the file to ``*.corrupt`` (preserved for
        post-mortems, invisible to future loads) rather than deleting it, and
        the read is counted in ``spill_errors`` -- a corrupt spill must never
        raise out of :meth:`get`.
        """
        path = self._spill_path(key)
        if path is None or not path.exists():
            return _MISSING
        if self._tomb_path(key).exists():
            # Invalidated via the shared tier (possibly by another process):
            # a plain miss, even if a stale spill file still lingers.
            return _MISSING
        try:
            FAULTS.check("cache.spill_load")
            return self._decode_spill(path.read_bytes())
        except Exception as exc:
            self.stats.spill_errors += 1
            logger.warning(
                "cache %s: quarantining corrupt spill %s (%s: %s)",
                self.name, path.name, type(exc).__name__, exc,
            )
            try:
                os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
            except OSError:
                path.unlink(missing_ok=True)
            return _MISSING


class CacheRegistry:
    """The named artifact caches of one service instance, with combined stats."""

    def __init__(
        self,
        *,
        max_entries: int = 128,
        spill_dir: str | Path | None = None,
        write_through: bool = False,
    ):
        self.max_entries = max_entries
        self.spill_dir = spill_dir
        self.write_through = write_through
        self._caches: dict[str, ArtifactCache] = {}
        self._lock = threading.Lock()

    def cache(
        self, name: str, *, max_entries: int | None = None, spill: bool = True
    ) -> ArtifactCache:
        """Get or create a named cache.

        ``spill=False`` opts the cache out of the registry's disk spill --
        for artifacts that are cheap to recompute but expensive to pickle
        (e.g. compiled plans, which hold a reference to their database).
        """
        with self._lock:
            if name not in self._caches:
                self._caches[name] = ArtifactCache(
                    name,
                    max_entries=max_entries or self.max_entries,
                    spill_dir=self.spill_dir if spill else None,
                    write_through=self.write_through and spill,
                )
            return self._caches[name]

    def caches(self) -> Iterable[ArtifactCache]:
        with self._lock:
            return list(self._caches.values())

    def stats(self) -> dict:
        """Per-cache and aggregate counters, JSON-safe."""
        per_cache = {cache.name: cache.stats.as_dict() for cache in self.caches()}
        totals = CacheStats()
        for cache in self.caches():
            totals.hits += cache.stats.hits
            totals.misses += cache.stats.misses
            totals.evictions += cache.stats.evictions
            totals.spill_writes += cache.stats.spill_writes
            totals.spill_loads += cache.stats.spill_loads
            totals.spill_errors += cache.stats.spill_errors
            totals.invalidations += cache.stats.invalidations
            totals.rewires += cache.stats.rewires
        return {"caches": per_cache, "total": totals.as_dict()}

    def flush(self) -> int:
        """Persist every cache's in-memory entries to disk; returns total written."""
        return sum(cache.flush() for cache in self.caches())

    def clear(self) -> None:
        for cache in self.caches():
            cache.clear()

"""The explanation service layer: a long-lived engine over the Explain3D pipeline.

This subsystem converts the one-shot pipeline into a request-serving system:

* :mod:`repro.service.engine` -- :class:`ExplainService`, which registers
  databases once and serves many explain requests, reusing content-addressed
  Stage-1 artifacts across requests;
* :mod:`repro.service.cache` -- the LRU artifact cache with fingerprinting,
  hit/miss statistics and optional disk spill;
* :mod:`repro.service.jobs` -- the bounded-concurrency async job queue with
  cooperative cancellation and optional retry;
* :mod:`repro.service.api` -- the JSON schema, stdlib HTTP daemon and client.

Reliability primitives (deadlines, circuit breakers, retry policies, fault
injection) live in :mod:`repro.reliability` and are re-exported here where
they surface in the service API.

Run the daemon with ``python -m repro.service``.
"""

from repro.live import DeltaConflictError, DeltaError
from repro.reliability import (
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    OperationCancelled,
    RetryPolicy,
)
from repro.service.cache import ArtifactCache, CacheRegistry, CacheStats, fingerprint_of
from repro.service.engine import (
    ExplainRequest,
    ExplainService,
    ServiceConfig,
    ServiceResult,
    UnknownDatabaseError,
)
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.api import (
    ServiceClient,
    ServiceClientError,
    SpecError,
    config_from_spec,
    database_from_spec,
    ingest_request_from_payload,
    mapping_from_spec,
    matches_from_spec,
    query_from_spec,
    request_from_payload,
    runs_request_from_payload,
    serve,
    serve_in_background,
    source_from_spec,
)

__all__ = [
    "CircuitOpenError",
    "DeltaConflictError",
    "DeltaError",
    "Deadline",
    "DeadlineExceeded",
    "OperationCancelled",
    "RetryPolicy",
    "ArtifactCache",
    "CacheRegistry",
    "CacheStats",
    "fingerprint_of",
    "ExplainRequest",
    "ExplainService",
    "ServiceConfig",
    "ServiceResult",
    "UnknownDatabaseError",
    "Job",
    "JobQueue",
    "JobState",
    "ServiceClient",
    "ServiceClientError",
    "SpecError",
    "config_from_spec",
    "database_from_spec",
    "ingest_request_from_payload",
    "mapping_from_spec",
    "matches_from_spec",
    "query_from_spec",
    "request_from_payload",
    "runs_request_from_payload",
    "serve",
    "serve_in_background",
    "source_from_spec",
]

"""Big-M linearization helpers.

The paper's MILP formulation contains two kinds of non-linear terms:

* products of a binary variable with a bounded continuous/integer expression
  (Equations (8) and (11)), linearized with the four standard big-M
  inequalities;
* the indicator ``y = (I* == I)`` of Equation (7), linearized so that ``y = 1``
  forces ``I* = I`` (the objective then rewards ``y = 1`` whenever it is
  admissible).
"""

from __future__ import annotations

from repro.solver.model import ConstraintSense, LinearExpression, MILPModel, Variable


def add_product_with_binary(
    model: MILPModel,
    name: str,
    binary: Variable,
    factor,
    lower: float,
    upper: float,
) -> Variable:
    """Add ``product = binary * factor`` where ``factor`` is in ``[lower, upper]``.

    Follows the linearization of Equation (8)/(11) in the paper:

    ``lower * b <= product <= upper * b`` and
    ``factor - upper * (1 - b) <= product <= factor - lower * (1 - b)``.
    """
    if lower > upper:
        raise ValueError(f"invalid factor range for {name}: [{lower}, {upper}]")
    if isinstance(factor, Variable):
        factor = LinearExpression.from_variable(factor)
    product = model.add_continuous(name, lower=min(lower, 0.0), upper=max(upper, 0.0))

    model.add_constraint(product - upper * binary, ConstraintSense.LESS_EQUAL, 0.0, f"{name}_ub_b")
    model.add_constraint(product - lower * binary, ConstraintSense.GREATER_EQUAL, 0.0, f"{name}_lb_b")
    # product <= factor - lower*(1-b)  <=>  product - factor - lower*b <= -lower
    model.add_constraint(
        product - factor - lower * binary, ConstraintSense.LESS_EQUAL, -lower, f"{name}_ub_f"
    )
    # product >= factor - upper*(1-b)  <=>  product - factor - upper*b >= -upper
    model.add_constraint(
        product - factor - upper * binary, ConstraintSense.GREATER_EQUAL, -upper, f"{name}_lb_f"
    )
    return product


def add_binary_product(model: MILPModel, name: str, left: Variable, right: Variable) -> Variable:
    """Add ``w = left * right`` for two binary variables.

    Standard linearization: ``w <= left``, ``w <= right``, ``w >= left + right - 1``.
    """
    product = model.add_binary(name)
    model.add_constraint(product - left, ConstraintSense.LESS_EQUAL, 0.0, f"{name}_le_l")
    model.add_constraint(product - right, ConstraintSense.LESS_EQUAL, 0.0, f"{name}_le_r")
    model.add_constraint(
        product - left - right, ConstraintSense.GREATER_EQUAL, -1.0, f"{name}_ge_sum"
    )
    return product


def add_equality_indicator(
    model: MILPModel,
    indicator: Variable,
    expression,
    target: float,
    *,
    big_m: float,
    name: str = "eq_indicator",
) -> None:
    """Force ``indicator = 1  =>  expression == target``.

    Implements Equation (7): the binary ``y_i`` may only be 1 when the refined
    impact equals the original impact.  The converse direction (``expression ==
    target => indicator = 1``) is *not* enforced; the objective rewards
    ``indicator = 1`` (``log beta > log(1 - beta)``), so an optimal solution
    always sets it when admissible.
    """
    if isinstance(expression, Variable):
        expression = LinearExpression.from_variable(expression)
    # expression - target <=  M * (1 - indicator)
    model.add_constraint(
        expression + big_m * indicator, ConstraintSense.LESS_EQUAL, target + big_m, f"{name}_ub"
    )
    # expression - target >= -M * (1 - indicator)
    model.add_constraint(
        expression - big_m * indicator, ConstraintSense.GREATER_EQUAL, target - big_m, f"{name}_lb"
    )

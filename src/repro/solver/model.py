"""Modeling layer for mixed integer linear programs.

The modeling objects are deliberately small and self-contained: variables,
linear expressions (sparse coefficient maps plus a constant), constraints and
a :class:`MILPModel` that can export itself to the dense matrix form expected
by LP solvers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np


class VariableType(enum.Enum):
    """Variable domains supported by the model."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"

    @property
    def is_integral(self) -> bool:
        return self in (VariableType.INTEGER, VariableType.BINARY)


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LESS_EQUAL = "<="
    GREATER_EQUAL = ">="
    EQUAL = "=="


class ObjectiveSense(enum.Enum):
    MAXIMIZE = "maximize"
    MINIMIZE = "minimize"


@dataclass(frozen=True)
class Variable:
    """A decision variable; created through :meth:`MILPModel.add_variable`."""

    name: str
    index: int
    vartype: VariableType = VariableType.CONTINUOUS
    lower: float = 0.0
    upper: float = math.inf

    def __post_init__(self):
        if self.lower > self.upper:
            raise ValueError(
                f"variable {self.name}: lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    # Arithmetic sugar so model-building code reads naturally.
    def __add__(self, other):
        return LinearExpression.from_variable(self) + other

    def __radd__(self, other):
        return LinearExpression.from_variable(self) + other

    def __sub__(self, other):
        return LinearExpression.from_variable(self) - other

    def __rsub__(self, other):
        return (-1.0) * LinearExpression.from_variable(self) + other

    def __mul__(self, scalar: float):
        return LinearExpression.from_variable(self) * scalar

    def __rmul__(self, scalar: float):
        return LinearExpression.from_variable(self) * scalar

    def __neg__(self):
        return LinearExpression.from_variable(self) * -1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variable({self.name}, {self.vartype.value}, [{self.lower}, {self.upper}])"


class LinearExpression:
    """A sparse linear expression ``sum_i c_i * x_i + constant``."""

    __slots__ = ("coefficients", "constant")

    def __init__(self, coefficients: Mapping[int, float] | None = None, constant: float = 0.0):
        self.coefficients: dict[int, float] = dict(coefficients or {})
        self.constant = float(constant)

    @classmethod
    def from_variable(cls, variable: Variable, coefficient: float = 1.0) -> "LinearExpression":
        return cls({variable.index: float(coefficient)})

    @classmethod
    def constant_expression(cls, value: float) -> "LinearExpression":
        return cls({}, value)

    def copy(self) -> "LinearExpression":
        return LinearExpression(dict(self.coefficients), self.constant)

    # -- arithmetic ---------------------------------------------------------------
    def _coerce(self, other) -> "LinearExpression":
        if isinstance(other, LinearExpression):
            return other
        if isinstance(other, Variable):
            return LinearExpression.from_variable(other)
        if isinstance(other, (int, float)):
            return LinearExpression.constant_expression(float(other))
        raise TypeError(f"cannot combine LinearExpression with {type(other).__name__}")

    def __add__(self, other) -> "LinearExpression":
        other = self._coerce(other)
        result = self.copy()
        for index, coefficient in other.coefficients.items():
            result.coefficients[index] = result.coefficients.get(index, 0.0) + coefficient
        result.constant += other.constant
        return result

    def __radd__(self, other) -> "LinearExpression":
        return self.__add__(other)

    def __sub__(self, other) -> "LinearExpression":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpression":
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar: float) -> "LinearExpression":
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinearExpression can only be scaled by a number")
        return LinearExpression(
            {index: coefficient * scalar for index, coefficient in self.coefficients.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar: float) -> "LinearExpression":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinearExpression":
        return self * -1.0

    # -- evaluation ---------------------------------------------------------------
    def value(self, assignment: Sequence[float]) -> float:
        """Evaluate the expression under a dense variable assignment."""
        total = self.constant
        for index, coefficient in self.coefficients.items():
            total += coefficient * assignment[index]
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = [f"{coeff:+g}*x{idx}" for idx, coeff in sorted(self.coefficients.items())]
        if self.constant or not terms:
            terms.append(f"{self.constant:+g}")
        return " ".join(terms)


def linear_sum(terms: Iterable) -> LinearExpression:
    """Sum variables/expressions/constants into a single expression."""
    result = LinearExpression()
    for term in terms:
        result = result + term
    return result


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expression sense rhs``."""

    expression: LinearExpression
    sense: ConstraintSense
    rhs: float
    name: str = ""

    def satisfied_by(self, assignment: Sequence[float], *, tolerance: float = 1e-6) -> bool:
        lhs = self.expression.value(assignment)
        if self.sense is ConstraintSense.LESS_EQUAL:
            return lhs <= self.rhs + tolerance
        if self.sense is ConstraintSense.GREATER_EQUAL:
            return lhs >= self.rhs - tolerance
        return abs(lhs - self.rhs) <= tolerance


class MILPModel:
    """A mixed integer linear program: variables, constraints and an objective."""

    def __init__(self, name: str = "milp"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinearExpression = LinearExpression()
        self.objective_sense: ObjectiveSense = ObjectiveSense.MAXIMIZE
        self._names: dict[str, int] = {}

    # -- construction -------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        *,
        vartype: VariableType = VariableType.CONTINUOUS,
        lower: float = 0.0,
        upper: float = math.inf,
    ) -> Variable:
        if name in self._names:
            raise ValueError(f"variable {name!r} already exists in model {self.name!r}")
        if vartype is VariableType.BINARY:
            lower, upper = 0.0, 1.0
        variable = Variable(name, len(self.variables), vartype, lower, upper)
        self.variables.append(variable)
        self._names[name] = variable.index
        return variable

    def add_binary(self, name: str) -> Variable:
        return self.add_variable(name, vartype=VariableType.BINARY)

    def add_integer(self, name: str, lower: float = 0.0, upper: float = math.inf) -> Variable:
        return self.add_variable(name, vartype=VariableType.INTEGER, lower=lower, upper=upper)

    def add_continuous(
        self, name: str, lower: float = -math.inf, upper: float = math.inf
    ) -> Variable:
        return self.add_variable(name, vartype=VariableType.CONTINUOUS, lower=lower, upper=upper)

    def variable(self, name: str) -> Variable:
        return self.variables[self._names[name]]

    def add_constraint(
        self,
        expression,
        sense: ConstraintSense | str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        if isinstance(expression, Variable):
            expression = LinearExpression.from_variable(expression)
        if not isinstance(expression, LinearExpression):
            raise TypeError("constraint left-hand side must be a LinearExpression or Variable")
        if isinstance(sense, str):
            sense = ConstraintSense(sense)
        constraint = Constraint(expression, sense, float(rhs), name)
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expression, sense: ObjectiveSense = ObjectiveSense.MAXIMIZE) -> None:
        if isinstance(expression, Variable):
            expression = LinearExpression.from_variable(expression)
        self.objective = expression
        self.objective_sense = sense

    # -- introspection ------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for variable in self.variables if variable.vartype.is_integral)

    def integral_indices(self) -> list[int]:
        return [variable.index for variable in self.variables if variable.vartype.is_integral]

    def is_feasible(self, assignment: Sequence[float], *, tolerance: float = 1e-6) -> bool:
        """Check bounds, integrality and constraints of a full assignment."""
        if len(assignment) != self.num_variables:
            return False
        for variable in self.variables:
            value = assignment[variable.index]
            if value < variable.lower - tolerance or value > variable.upper + tolerance:
                return False
            if variable.vartype.is_integral and abs(value - round(value)) > tolerance:
                return False
        return all(
            constraint.satisfied_by(assignment, tolerance=tolerance)
            for constraint in self.constraints
        )

    def objective_value(self, assignment: Sequence[float]) -> float:
        return self.objective.value(assignment)

    # -- export to matrix form ----------------------------------------------------
    def to_arrays(self) -> dict:
        """Dense matrix form used by the LP relaxation and the HiGHS backend.

        The returned objective is always expressed for *minimization* (negated
        when the model maximizes); ``objective_offset`` carries the constant
        term which solvers ignore.
        """
        n = self.num_variables
        c = np.zeros(n)
        for index, coefficient in self.objective.coefficients.items():
            c[index] = coefficient
        sign = -1.0 if self.objective_sense is ObjectiveSense.MAXIMIZE else 1.0
        c = sign * c

        a_ub_rows: list[np.ndarray] = []
        b_ub: list[float] = []
        a_eq_rows: list[np.ndarray] = []
        b_eq: list[float] = []
        for constraint in self.constraints:
            row = np.zeros(n)
            for index, coefficient in constraint.expression.coefficients.items():
                row[index] = coefficient
            rhs = constraint.rhs - constraint.expression.constant
            if constraint.sense is ConstraintSense.LESS_EQUAL:
                a_ub_rows.append(row)
                b_ub.append(rhs)
            elif constraint.sense is ConstraintSense.GREATER_EQUAL:
                a_ub_rows.append(-row)
                b_ub.append(-rhs)
            else:
                a_eq_rows.append(row)
                b_eq.append(rhs)

        bounds = [(variable.lower, variable.upper) for variable in self.variables]
        integrality = np.array(
            [1 if variable.vartype.is_integral else 0 for variable in self.variables]
        )
        return {
            "c": c,
            "objective_sign": sign,
            "objective_offset": self.objective.constant,
            "A_ub": np.vstack(a_ub_rows) if a_ub_rows else None,
            "b_ub": np.array(b_ub) if b_ub else None,
            "A_eq": np.vstack(a_eq_rows) if a_eq_rows else None,
            "b_eq": np.array(b_eq) if b_eq else None,
            "bounds": bounds,
            "integrality": integrality,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MILPModel({self.name}, {self.num_variables} vars "
            f"({self.num_integer_variables} integral), {self.num_constraints} constraints)"
        )

"""A pure-Python branch-and-bound MILP solver.

The solver repeatedly solves LP relaxations (via HiGHS' simplex through
``scipy.optimize.linprog``), branches on the most fractional integral variable
and prunes nodes whose relaxation bound cannot improve on the incumbent.  It is
exact on the problem sizes produced by Explain3D's smart partitioning and
serves as the reference backend in tests; the HiGHS MIP backend in
:mod:`repro.solver.backends` is the faster default for benchmarks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.solver.lp import LPStatus, solve_lp_relaxation
from repro.solver.model import MILPModel, ObjectiveSense


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its relaxation bound (best-first)."""

    priority: float
    counter: int
    bounds: dict[int, tuple[float, float]] = field(compare=False)


@dataclass
class BranchAndBoundStats:
    """Diagnostics for a branch-and-bound run."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    lp_solves: int = 0
    incumbent_updates: int = 0


class BranchAndBoundSolver:
    """Best-first branch and bound over LP relaxations."""

    def __init__(
        self,
        *,
        integrality_tolerance: float = 1e-6,
        gap_tolerance: float = 1e-9,
        node_limit: int = 200_000,
    ):
        self.integrality_tolerance = integrality_tolerance
        self.gap_tolerance = gap_tolerance
        self.node_limit = node_limit
        self.stats = BranchAndBoundStats()

    # -- helpers ------------------------------------------------------------------
    def _most_fractional(self, values: np.ndarray, integral_indices) -> Optional[int]:
        """Index of the integral variable whose value is farthest from integer.

        Vectorized: ``argmax`` of the per-variable distances to the nearest
        integer, matching the scalar loop (first index wins ties; ``None``
        when every distance is within the integrality tolerance).
        """
        indices = np.asarray(integral_indices, dtype=np.intp)
        if indices.size == 0:
            return None
        integral_values = values[indices]
        distances = np.abs(integral_values - np.round(integral_values))
        best = int(np.argmax(distances))
        if distances[best] <= self.integrality_tolerance:
            return None
        return int(indices[best])

    def _round_solution(self, values: np.ndarray, integral_indices) -> np.ndarray:
        rounded = np.array(values, dtype=float)
        indices = np.asarray(integral_indices, dtype=np.intp)
        if indices.size:
            rounded[indices] = np.round(rounded[indices])
        return rounded

    # -- main entry point ---------------------------------------------------------
    def solve(self, model: MILPModel) -> tuple[Optional[np.ndarray], float]:
        """Solve ``model``; returns ``(values, objective)`` or ``(None, nan)``.

        The objective is reported in the model's own sense (maximize or
        minimize).
        """
        self.stats = BranchAndBoundStats()
        arrays = model.to_arrays()
        integral_indices = np.asarray(model.integral_indices(), dtype=np.intp)
        maximize = model.objective_sense is ObjectiveSense.MAXIMIZE

        def better(candidate: float, incumbent: float) -> bool:
            if math.isnan(incumbent):
                return True
            return candidate > incumbent + self.gap_tolerance if maximize else candidate < incumbent - self.gap_tolerance

        def cannot_improve(bound: float, incumbent: float) -> bool:
            if math.isnan(incumbent):
                return False
            return bound <= incumbent + self.gap_tolerance if maximize else bound >= incumbent - self.gap_tolerance

        incumbent_values: Optional[np.ndarray] = None
        incumbent_objective = float("nan")

        counter = 0
        root = _Node(priority=0.0, counter=counter, bounds={})
        heap: list[_Node] = [root]

        while heap and self.stats.nodes_explored < self.node_limit:
            node = heapq.heappop(heap)
            self.stats.nodes_explored += 1

            relaxation = solve_lp_relaxation(arrays, extra_bounds=node.bounds)
            self.stats.lp_solves += 1
            if relaxation.status is not LPStatus.OPTIMAL:
                self.stats.nodes_pruned += 1
                continue
            if cannot_improve(relaxation.objective, incumbent_objective):
                self.stats.nodes_pruned += 1
                continue

            branch_index = self._most_fractional(relaxation.values, integral_indices)
            if branch_index is None:
                # Integral (within tolerance): candidate incumbent.
                candidate = self._round_solution(relaxation.values, integral_indices)
                if model.is_feasible(candidate, tolerance=1e-5):
                    objective = model.objective_value(candidate)
                    if better(objective, incumbent_objective):
                        incumbent_values = candidate
                        incumbent_objective = objective
                        self.stats.incumbent_updates += 1
                continue

            value = relaxation.values[branch_index]
            floor_value = math.floor(value)
            ceil_value = math.ceil(value)
            # Best-first: explore the child with the better parent bound first.
            priority = -relaxation.objective if maximize else relaxation.objective

            counter += 1
            down = dict(node.bounds)
            down[branch_index] = (
                max(down.get(branch_index, (-math.inf, math.inf))[0], -math.inf),
                floor_value,
            )
            heapq.heappush(heap, _Node(priority, counter, down))

            counter += 1
            up = dict(node.bounds)
            up[branch_index] = (
                ceil_value,
                min(up.get(branch_index, (-math.inf, math.inf))[1], math.inf),
            )
            heapq.heappush(heap, _Node(priority, counter, up))

        return incumbent_values, incumbent_objective

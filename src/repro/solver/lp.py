"""LP relaxation solving on top of ``scipy.optimize.linprog`` (HiGHS)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True)
class LPResult:
    """Result of an LP relaxation solve.

    ``objective`` is reported in the *original* sense of the model (maximized
    objectives are un-negated), so callers can compare it directly with
    incumbent solutions.
    """

    status: LPStatus
    objective: float
    values: np.ndarray | None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL


_STATUS_BY_CODE = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,       # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}


def solve_lp_relaxation(arrays: dict, *, extra_bounds: dict[int, tuple[float, float]] | None = None) -> LPResult:
    """Solve the LP relaxation of a model exported with :meth:`MILPModel.to_arrays`.

    ``extra_bounds`` overrides individual variable bounds -- this is how the
    branch-and-bound solver tightens bounds along each branch without copying
    the whole model.
    """
    bounds = list(arrays["bounds"])
    if extra_bounds:
        for index, bound in extra_bounds.items():
            lower = max(bounds[index][0], bound[0])
            upper = min(bounds[index][1], bound[1])
            if lower > upper:
                return LPResult(LPStatus.INFEASIBLE, float("nan"), None)
            bounds[index] = (lower, upper)

    result = linprog(
        c=arrays["c"],
        A_ub=arrays["A_ub"],
        b_ub=arrays["b_ub"],
        A_eq=arrays["A_eq"],
        b_eq=arrays["b_eq"],
        bounds=bounds,
        method="highs",
    )
    status = _STATUS_BY_CODE.get(result.status, LPStatus.ERROR)
    if status is not LPStatus.OPTIMAL or result.x is None:
        return LPResult(status, float("nan"), None)

    # linprog minimizes sign * objective; convert back to the model's sense.
    sign = arrays["objective_sign"]
    objective = sign * result.fun + arrays["objective_offset"]
    return LPResult(LPStatus.OPTIMAL, float(objective), np.asarray(result.x))

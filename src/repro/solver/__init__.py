"""Mixed integer linear programming substrate.

The paper solves the EXP-3D optimization with IBM CPLEX.  CPLEX is proprietary
and unavailable offline, so this subpackage provides the solving substrate:

* :mod:`repro.solver.model` -- variables, linear expressions, constraints and
  the :class:`~repro.solver.model.MILPModel` container.
* :mod:`repro.solver.linearize` -- big-M linearization helpers for the
  products of binary and continuous variables that appear in the paper's
  Equations (8) and (11).
* :mod:`repro.solver.lp` -- LP relaxation solving on top of
  ``scipy.optimize.linprog`` (HiGHS).
* :mod:`repro.solver.branch_and_bound` -- a pure-Python branch-and-bound MILP
  solver built on the LP relaxation.
* :mod:`repro.solver.backends` -- a common interface with two interchangeable
  backends: the built-in branch and bound, and HiGHS' own MIP solver exposed
  through ``scipy.optimize.milp``.
"""

from repro.solver.model import (
    Constraint,
    ConstraintSense,
    LinearExpression,
    MILPModel,
    ObjectiveSense,
    Variable,
    VariableType,
)
from repro.solver.lp import LPResult, LPStatus, solve_lp_relaxation
from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.backends import HighsSolver, MILPSolution, MILPSolver, SolverError, default_solver
from repro.solver.linearize import (
    add_binary_product,
    add_equality_indicator,
    add_product_with_binary,
)

__all__ = [
    "Variable",
    "VariableType",
    "LinearExpression",
    "Constraint",
    "ConstraintSense",
    "ObjectiveSense",
    "MILPModel",
    "LPResult",
    "LPStatus",
    "solve_lp_relaxation",
    "BranchAndBoundSolver",
    "HighsSolver",
    "MILPSolver",
    "MILPSolution",
    "SolverError",
    "default_solver",
    "add_binary_product",
    "add_product_with_binary",
    "add_equality_indicator",
]

"""Common solver interface with interchangeable backends.

Two backends are provided:

* :class:`HighsSolver` -- HiGHS' branch-and-cut MIP solver exposed through
  ``scipy.optimize.milp``.  This plays the role of CPLEX in the paper and is
  the default.
* :class:`BranchAndBoundSolver` (adapted through :class:`BnBSolverBackend`) --
  the pure-Python branch and bound of :mod:`repro.solver.branch_and_bound`,
  useful as an independent cross-check in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np
from scipy.optimize import LinearConstraint, milp
from scipy.optimize import Bounds as ScipyBounds

from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.model import MILPModel


class SolverError(RuntimeError):
    """Raised when a MILP could not be solved to optimality."""


@dataclass
class MILPSolution:
    """A solved assignment: values by variable name plus the objective value."""

    objective: float
    values: dict[str, float]

    def value(self, name: str) -> float:
        return self.values[name]

    def binary(self, name: str) -> bool:
        return round(self.values[name]) >= 1

    def __getitem__(self, name: str) -> float:
        return self.values[name]


class MILPSolver(Protocol):
    """Protocol implemented by all solver backends."""

    def solve(self, model: MILPModel) -> MILPSolution:  # pragma: no cover - protocol
        ...


def _to_solution(model: MILPModel, values: np.ndarray, objective: float) -> MILPSolution:
    named = {variable.name: float(values[variable.index]) for variable in model.variables}
    return MILPSolution(objective=float(objective), values=named)


class HighsSolver:
    """MILP solving through ``scipy.optimize.milp`` (HiGHS branch and cut)."""

    def __init__(self, *, time_limit: float | None = None, mip_rel_gap: float = 1e-6):
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap

    def clone(self) -> "HighsSolver":
        """A fresh, identically configured instance for a parallel worker."""
        return HighsSolver(time_limit=self.time_limit, mip_rel_gap=self.mip_rel_gap)

    def solve(self, model: MILPModel) -> MILPSolution:
        arrays = model.to_arrays()
        n = model.num_variables
        if n == 0:
            return MILPSolution(objective=arrays["objective_offset"], values={})

        constraints = []
        if arrays["A_ub"] is not None:
            constraints.append(
                LinearConstraint(arrays["A_ub"], -np.inf * np.ones(len(arrays["b_ub"])), arrays["b_ub"])
            )
        if arrays["A_eq"] is not None:
            constraints.append(
                LinearConstraint(arrays["A_eq"], arrays["b_eq"], arrays["b_eq"])
            )
        lower = np.array([bound[0] for bound in arrays["bounds"]], dtype=float)
        upper = np.array([bound[1] for bound in arrays["bounds"]], dtype=float)

        options = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit

        result = milp(
            c=arrays["c"],
            constraints=constraints or None,
            bounds=ScipyBounds(lower, upper),
            integrality=arrays["integrality"],
            options=options,
        )
        if not result.success or result.x is None:
            raise SolverError(f"HiGHS failed to solve model {model.name!r}: {result.message}")
        objective = arrays["objective_sign"] * result.fun + arrays["objective_offset"]
        return _to_solution(model, result.x, objective)


class BnBSolverBackend:
    """Adapter exposing :class:`BranchAndBoundSolver` through the common interface."""

    def __init__(self, **kwargs):
        self._kwargs = dict(kwargs)
        self._solver = BranchAndBoundSolver(**kwargs)

    @property
    def stats(self):
        return self._solver.stats

    def clone(self) -> "BnBSolverBackend":
        """A fresh instance for a parallel worker.

        The underlying branch-and-bound solver mutates its ``stats`` during a
        solve, so concurrent partitions must not share one instance.
        """
        return BnBSolverBackend(**self._kwargs)

    def solve(self, model: MILPModel) -> MILPSolution:
        values, objective = self._solver.solve(model)
        if values is None:
            raise SolverError(f"branch and bound found no feasible solution for {model.name!r}")
        return _to_solution(model, values, objective)


def default_solver() -> MILPSolver:
    """The default MILP backend used by the Explain3D pipeline."""
    return HighsSolver()

"""SQL frontend: parse real SQL into the Explain3D query AST.

The paper defines its workloads as SQL queries ``Q = pi_o sigma_C(X)`` over
two disjoint databases; this package turns such SQL strings into the
executable :class:`~repro.relational.query.Query` trees the rest of the
pipeline consumes:

* :func:`parse_query` -- SQL string + optional database -> bound ``Query``;
* :func:`parse_statement` -- SQL string -> syntactic AST (no binding);
* :func:`lower_statement` -- syntactic AST -> relational query node;
* :func:`node_to_sql` / :func:`query_to_sql` -- pretty-print a query AST
  back to SQL (an exact inverse on the lowerer's image: parse -> lower ->
  print -> parse -> lower is fingerprint-identical);
* :mod:`repro.sql.fuzz` -- a random well-formed query generator used by the
  CI smoke step and the round-trip property tests;
* ``python -m repro.sql`` -- CLI to parse, validate, pretty-print, fuzz and
  run a full explain from two SQL strings.

Errors carry source positions (:class:`~repro.sql.errors.SqlError` and
subclasses) and render caret-annotated excerpts via ``err.describe()``.
"""

from repro.sql.errors import (
    BindError,
    LexError,
    ParseError,
    SqlError,
    SqlPrintError,
)
from repro.sql.lower import (
    Lowered,
    lower_statement,
    node_to_sql,
    parse_query,
    query_to_sql,
)
from repro.sql.parser import parse as parse_statement

__all__ = [
    "BindError",
    "LexError",
    "Lowered",
    "ParseError",
    "SqlError",
    "SqlPrintError",
    "lower_statement",
    "node_to_sql",
    "parse_query",
    "parse_statement",
    "query_to_sql",
]

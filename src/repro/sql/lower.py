"""Lowering SQL syntax to the relational query AST, and printing it back.

``lower_statement`` turns a parsed :mod:`repro.sql.ast` statement into the
executor's :class:`~repro.relational.query.QueryNode` tree:

* ``FROM a JOIN b ON ...`` and ``FROM a, b WHERE a.x = b.y`` both become
  :class:`~repro.relational.query.Join` (equi-join conjuncts turn into
  ``on`` pairs, anything else into the join's extra ``condition``);
* plain WHERE conjuncts become one :class:`~repro.relational.query.Select`;
* ``(k1, k2) NOT IN (SELECT ...)`` conjuncts become
  :class:`~repro.relational.query.Difference` nodes applied after the
  selection, in conjunct order;
* a single aggregate (with optional GROUP BY) becomes
  :class:`~repro.relational.query.Aggregate`; a plain column list becomes
  :class:`~repro.relational.query.Project`; ``SELECT *`` adds no node;
* ``UNION`` chains flatten into one n-ary
  :class:`~repro.relational.query.Union`; ``EXCEPT`` becomes a
  :class:`~repro.relational.query.Difference` keyed on the left side's
  output columns.

AND/OR chains bind to *left-nested binary* ``And``/``Or`` (exactly how the
fluent ``&``/``|`` builders nest), and explicit parentheses are preserved as
nesting boundaries -- which together make the companion printers
(``node_to_sql`` / ``query_to_sql``) exact inverses: parse -> lower ->
print -> parse -> lower yields a fingerprint-identical AST.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.relational.expressions import (
    And,
    AttributeComparison,
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Difference,
    Join,
    Project,
    Query,
    QueryNode,
    Scan,
    Select,
    Union,
)
from repro.sql import ast
from repro.sql.binder import (
    TreeScope,
    bind_table,
    join_scopes,
    scope_for_source,
)
from repro.sql.errors import BindError, SqlPrintError
from repro.sql.lexer import KEYWORDS
from repro.sql.parser import parse


@dataclass(frozen=True)
class Lowered:
    """A lowered statement: the query node plus its output column names
    (``None`` when unknown, i.e. lenient mode with ``SELECT *``)."""

    node: QueryNode
    columns: tuple[str, ...] | None


@dataclass
class _State:
    """An in-progress FROM tree: the node plus its binding scope."""

    node: QueryNode
    scope: TreeScope


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------

def parse_query(
    sql: str,
    db=None,
    *,
    name: str = "Q",
    description: str = "",
) -> Query:
    """Parse, bind and lower one SQL string into a named :class:`Query`.

    With a :class:`~repro.relational.executor.Database`, every relation and
    column name is validated (strict mode); without one, names pass through
    unchecked (lenient mode) -- useful for syntax validation and printing.
    """
    statement = parse(sql)
    lowered = lower_statement(statement, db, sql)
    return Query(name=name, root=lowered.node, description=description)


def lower_statement(statement: ast.Statement, db, source: str) -> Lowered:
    """Lower a parsed statement against ``db`` (``None`` = lenient)."""
    lenient = db is None
    if isinstance(statement, ast.ParenStatement):
        return lower_statement(statement.statement, db, source)
    if isinstance(statement, ast.CompoundSelect):
        return _lower_compound(statement, db, source, lenient)
    return _lower_select_core(statement, db, source, lenient)


# ---------------------------------------------------------------------------
# Compound statements (UNION / EXCEPT).
# ---------------------------------------------------------------------------

def _lower_unit(unit: ast.SelectUnit, db, source: str, lenient: bool) -> Lowered:
    if isinstance(unit, ast.ParenStatement):
        return lower_statement(unit.statement, db, source)
    return _lower_select_core(unit, db, source, lenient)


def _collapse_union(pending: list[Lowered]) -> Lowered:
    if len(pending) == 1:
        return pending[0]
    return Lowered(Union(tuple(item.node for item in pending)), pending[0].columns)


def _lower_compound(
    statement: ast.CompoundSelect, db, source: str, lenient: bool
) -> Lowered:
    pending = [_lower_unit(statement.first, db, source, lenient)]
    for op, unit in statement.tail:
        nxt = _lower_unit(unit, db, source, lenient)
        reference = pending[0]
        if (
            reference.columns is not None
            and nxt.columns is not None
            and reference.columns != nxt.columns
        ):
            raise BindError(
                f"{op} inputs have different output schemas: "
                f"{list(reference.columns)} vs {list(nxt.columns)}",
                position=_unit_position(unit),
                source=source,
            )
        if op == "UNION":
            pending.append(nxt)
            continue
        left = _collapse_union(pending)
        if left.columns is None:
            raise BindError(
                "EXCEPT needs known output columns; bind against a database "
                "or project explicit columns on its left side",
                position=_unit_position(unit),
                source=source,
            )
        node = Difference(left.node, nxt.node, on=left.columns)
        pending = [Lowered(node, left.columns)]
    return _collapse_union(pending)


def _unit_position(unit: ast.SelectUnit) -> int:
    return unit.position


# ---------------------------------------------------------------------------
# SELECT cores.
# ---------------------------------------------------------------------------

def _conjuncts(expr: ast.BoolExpr | None) -> list[ast.BoolExpr]:
    """Top-level AND conjuncts (never reaching inside explicit parentheses)."""
    if expr is None:
        return []
    if isinstance(expr, ast.AndExpr):
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _fold_and(predicates: list[Predicate]) -> Predicate:
    result = predicates[0]
    for part in predicates[1:]:
        result = And(result, part)
    return result


def _lower_select_core(
    core: ast.SelectCore, db, source: str, lenient: bool
) -> Lowered:
    states = [_lower_from_item(item, db, source, lenient) for item in core.sources]
    conjuncts = _conjuncts(core.where)
    used = [False] * len(conjuncts)

    # Fold comma-separated FROM items left to right, pulling matching
    # equi-join conjuncts out of WHERE as ``on`` pairs.
    acc = states[0]
    for state in states[1:]:
        pairs: list[tuple[str, str]] = []
        for index, conjunct in enumerate(conjuncts):
            if used[index]:
                continue
            pair = _try_join_pair(conjunct, acc.scope, state.scope)
            if pair is not None:
                pairs.append(pair)
                used[index] = True
        scope = join_scopes(acc.scope, state.scope)
        acc = _State(Join(acc.node, state.node, on=tuple(pairs)), scope)

    # Remaining WHERE conjuncts: plain predicates first, then NOT IN
    # subqueries (in conjunct order) as Difference nodes.
    plain: list[ast.BoolExpr] = []
    subqueries: list[ast.InSelectExpr] = []
    for index, conjunct in enumerate(conjuncts):
        if used[index]:
            continue
        if isinstance(conjunct, ast.InSelectExpr):
            if not conjunct.negated:
                raise BindError(
                    "IN (SELECT ...) is only supported in its negated form "
                    "(NOT IN), which lowers to a set difference",
                    position=conjunct.position,
                    source=source,
                )
            subqueries.append(conjunct)
            continue
        if isinstance(conjunct, ast.BoolLiteral) and conjunct.value:
            continue  # WHERE TRUE is the identity selection
        plain.append(conjunct)

    node = acc.node
    if plain:
        node = Select(node, _fold_and([_bind_predicate(c, acc.scope) for c in plain]))

    for conjunct in subqueries:
        on = tuple(acc.scope.resolve(ref) for ref in conjunct.refs)
        sub = lower_statement(conjunct.query, db, source)
        if sub.columns is not None:
            for ref, key in zip(conjunct.refs, on):
                if key not in sub.columns:
                    raise BindError(
                        f"NOT IN subquery does not produce column {key!r}; "
                        f"it outputs {list(sub.columns)}",
                        position=ref.position,
                        source=source,
                    )
        node = Difference(node, sub.node, on=on)

    return _lower_select_list(core, node, acc.scope, source)


def _lower_select_list(
    core: ast.SelectCore, node: QueryNode, scope: TreeScope, source: str
) -> Lowered:
    aggregates = [item for item in core.items if isinstance(item, ast.AggregateItem)]
    columns = [item for item in core.items if isinstance(item, ast.ColumnItem)]
    stars = [item for item in core.items if isinstance(item, ast.Star)]

    if stars:
        if len(core.items) > 1:
            raise BindError(
                "* cannot be combined with other select items",
                position=stars[0].position,
                source=source,
            )
        if core.group_by:
            raise BindError(
                "GROUP BY requires an aggregate select list",
                position=core.group_by[0].position,
                source=source,
            )
        if core.distinct:
            if scope.columns is None:
                raise BindError(
                    "SELECT DISTINCT * needs a known schema; "
                    "bind against a database",
                    position=stars[0].position,
                    source=source,
                )
            return Lowered(
                Project(node, scope.columns, distinct=True), scope.columns
            )
        return Lowered(node, scope.columns)

    if aggregates:
        if len(aggregates) > 1:
            raise BindError(
                "at most one aggregate per query "
                "(the paper's query class is pi_o sigma_C(X))",
                position=aggregates[1].position,
                source=source,
            )
        if core.distinct:
            raise BindError(
                "SELECT DISTINCT cannot be combined with an aggregate",
                position=aggregates[0].position,
                source=source,
            )
        item = aggregates[0]
        function = AggregateFunction[item.function]
        if item.argument is None and function is not AggregateFunction.COUNT:
            raise BindError(
                f"{function.value}(*) is not defined; only COUNT(*) may take *",
                position=item.position,
                source=source,
            )
        attribute = scope.resolve(item.argument) if item.argument is not None else None
        group_by = tuple(scope.resolve(ref) for ref in core.group_by)
        for column in columns:
            if column.alias is not None:
                raise BindError(
                    "column aliases are not supported "
                    "(the relational algebra has no rename operator)",
                    position=column.position,
                    source=source,
                )
            resolved = scope.resolve(column.ref)
            if resolved not in group_by:
                raise BindError(
                    f"column {resolved!r} must appear in GROUP BY",
                    position=column.position,
                    source=source,
                )
        alias = item.alias or function.value.lower()
        if alias in group_by:
            raise BindError(
                f"aggregate alias {alias!r} collides with a GROUP BY column",
                position=item.position,
                source=source,
            )
        if len(set(group_by)) != len(group_by):
            raise BindError(
                "GROUP BY lists the same column twice",
                position=core.group_by[0].position,
                source=source,
            )
        lowered = Aggregate(node, function, attribute, group_by=group_by, alias=alias)
        return Lowered(lowered, group_by + (alias,))

    if core.group_by:
        raise BindError(
            "GROUP BY requires an aggregate in the select list",
            position=core.group_by[0].position,
            source=source,
        )
    attributes = []
    for column in columns:
        if column.alias is not None:
            raise BindError(
                "column aliases are not supported "
                "(the relational algebra has no rename operator)",
                position=column.position,
                source=source,
            )
        resolved = scope.resolve(column.ref)
        if resolved in attributes:
            raise BindError(
                f"column {resolved!r} is selected twice "
                "(the output schema needs unique names)",
                position=column.position,
                source=source,
            )
        attributes.append(resolved)
    projected = tuple(attributes)
    return Lowered(Project(node, projected, distinct=core.distinct), projected)


# ---------------------------------------------------------------------------
# FROM items and joins.
# ---------------------------------------------------------------------------

def _lower_from_item(
    item: ast.FromSource, db, source: str, lenient: bool
) -> _State:
    if isinstance(item, ast.TableSource):
        names = bind_table(db, item.name, item.position, source)
        scope = scope_for_source(item.alias or item.name, names, source, lenient)
        return _State(Scan(item.name), scope)
    if isinstance(item, ast.SubquerySource):
        sub = lower_statement(item.statement, db, source)
        scope = scope_for_source(item.alias, sub.columns, source, lenient)
        return _State(sub.node, scope)
    left = _lower_from_item(item.left, db, source, lenient)
    right = _lower_from_item(item.right, db, source, lenient)
    return _join_states(left, right, item.condition, source)


def _join_states(
    left: _State, right: _State, condition: ast.BoolExpr, source: str
) -> _State:
    pairs: list[tuple[str, str]] = []
    extra: list[ast.BoolExpr] = []
    for conjunct in _conjuncts(condition):
        if isinstance(conjunct, ast.BoolLiteral) and conjunct.value:
            continue  # ON TRUE = unconditional (cross) join
        pair = _try_join_pair(conjunct, left.scope, right.scope, assume_cross=True)
        if pair is not None:
            pairs.append(pair)
        else:
            extra.append(conjunct)
    combined = join_scopes(left.scope, right.scope)
    bound_condition = None
    if extra:
        bound_condition = _fold_and([_bind_predicate(c, combined) for c in extra])
    node = Join(left.node, right.node, on=tuple(pairs), condition=bound_condition)
    return _State(node, combined)


def _try_join_pair(
    conjunct: ast.BoolExpr,
    left: TreeScope,
    right: TreeScope,
    *,
    assume_cross: bool = False,
) -> tuple[str, str] | None:
    """``(left_attr, right_attr)`` if the conjunct is a cross-side equality.

    When a name could belong to either side (``ON actor_id = actor_id``), the
    natural reading wins: the first reference binds left, the second right.

    In lenient mode (unknown schemas) an unqualified name's side is
    unknowable; such conjuncts only become join pairs inside an ON clause
    (``assume_cross=True``), where the user explicitly declared a join
    condition.  WHERE conjuncts over comma sources must *prove* the
    cross-side split (via schemas or qualification) -- otherwise a same-side
    filter like ``label = city`` would silently turn into a bogus on-pair.
    """
    if not (
        isinstance(conjunct, ast.ComparisonExpr)
        and conjunct.op in ("=", "==")
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return None
    a, b = conjunct.left, conjunct.right
    unknown_ok = assume_cross  # treat "unknowable" as a match only inside ON

    def holds(membership: bool | None) -> bool:
        return membership is True or (membership is None and unknown_ok)

    if holds(left.membership(a)) and holds(right.membership(b)):
        return left.resolve(a), right.resolve(b)
    if holds(left.membership(b)) and holds(right.membership(a)):
        return left.resolve(b), right.resolve(a)
    return None


# ---------------------------------------------------------------------------
# Predicate binding.
# ---------------------------------------------------------------------------

_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

_WILDCARDS = ("%", "_")


def _bind_predicate(expr: ast.BoolExpr, scope: TreeScope) -> Predicate:
    source = scope.source
    if isinstance(expr, ast.ParenExpr):
        return _bind_predicate(expr.inner, scope)
    if isinstance(expr, ast.ComparisonExpr):
        return _bind_comparison(expr, scope)
    if isinstance(expr, ast.InListExpr):
        predicate: Predicate = Membership(
            scope.resolve(expr.ref), tuple(value.value for value in expr.values)
        )
        return Not(predicate) if expr.negated else predicate
    if isinstance(expr, ast.InSelectExpr):
        raise BindError(
            "NOT IN (SELECT ...) is only supported as a top-level AND "
            "conjunct of WHERE",
            position=expr.position,
            source=source,
        )
    if isinstance(expr, ast.BetweenExpr):
        name = scope.resolve(expr.ref)
        between = And(
            Comparison(name, ">=", expr.low.value),
            Comparison(name, "<=", expr.high.value),
        )
        return Not(between) if expr.negated else between
    if isinstance(expr, ast.LikeExpr):
        predicate = _bind_like(expr, scope)
        return Not(predicate) if expr.negated else predicate
    if isinstance(expr, ast.IsNullExpr):
        return IsNull(scope.resolve(expr.ref), negate=expr.negated)
    if isinstance(expr, ast.NotExpr):
        return Not(_bind_predicate(expr.operand, scope))
    if isinstance(expr, ast.AndExpr):
        return And(
            _bind_predicate(expr.left, scope), _bind_predicate(expr.right, scope)
        )
    if isinstance(expr, ast.OrExpr):
        return Or(
            _bind_predicate(expr.left, scope), _bind_predicate(expr.right, scope)
        )
    if isinstance(expr, ast.BoolLiteral):
        return TruePredicate() if expr.value else Not(TruePredicate())
    raise BindError(
        f"unsupported expression {type(expr).__name__}",
        position=getattr(expr, "position", 0),
        source=source,
    )


def _bind_comparison(expr: ast.ComparisonExpr, scope: TreeScope) -> Predicate:
    left_ref = isinstance(expr.left, ast.ColumnRef)
    right_ref = isinstance(expr.right, ast.ColumnRef)
    if left_ref and right_ref:
        return AttributeComparison(
            scope.resolve(expr.left), expr.op, scope.resolve(expr.right)
        )
    if left_ref:
        return Comparison(scope.resolve(expr.left), expr.op, expr.right.value)
    if right_ref:
        flipped = _FLIPPED_OPS.get(expr.op, expr.op)
        return Comparison(scope.resolve(expr.right), flipped, expr.left.value)
    raise BindError(
        "comparison needs at least one column reference",
        position=expr.position,
        source=scope.source,
    )


def _bind_like(expr: ast.LikeExpr, scope: TreeScope) -> Predicate:
    name = scope.resolve(expr.ref)
    pattern = expr.pattern
    if not any(wildcard in pattern for wildcard in _WILDCARDS):
        return Comparison(name, "=", pattern)
    if (
        len(pattern) >= 2
        and pattern.startswith("%")
        and pattern.endswith("%")
        and not any(wildcard in pattern[1:-1] for wildcard in _WILDCARDS)
    ):
        return Contains(name, pattern[1:-1])
    raise BindError(
        f"unsupported LIKE pattern {pattern!r}: only exact strings and "
        "'%substring%' containment are expressible",
        position=expr.position,
        source=scope.source,
    )


# ---------------------------------------------------------------------------
# Pretty-printing query ASTs back to SQL.
# ---------------------------------------------------------------------------

def node_to_sql(node: QueryNode) -> str:
    """SQL text for a query AST node.

    On the image of the lowerer (and on every hand-built dataset query) this
    is an exact inverse: re-parsing and re-lowering the printed SQL yields a
    fingerprint-identical AST.  Constructs the SQL subset cannot express
    (ad-hoc callable predicates, n-ary Union of one input, exotic literal
    types) raise :class:`SqlPrintError`.
    """
    return _SqlPrinter().statement(node)


def query_to_sql(query: Query) -> str:
    """SQL text for a named query (the name itself lives outside the SQL)."""
    return node_to_sql(query.root)


_BARE_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


class _SqlPrinter:
    def __init__(self):
        self._alias_counter = 0

    def _fresh_alias(self) -> str:
        self._alias_counter += 1
        return f"sq{self._alias_counter}"

    # -- statements --------------------------------------------------------------
    def statement(self, node: QueryNode) -> str:
        if isinstance(node, Aggregate):
            items = [self.ident(name) for name in node.group_by]
            argument = "*" if node.attribute is None else self.ident(node.attribute)
            items.append(
                f"{node.function.value}({argument}) AS {self.ident(node.alias)}"
            )
            group = ""
            if node.group_by:
                names = ", ".join(self.ident(name) for name in node.group_by)
                group = f" GROUP BY {names}"
            return f"SELECT {', '.join(items)} {self.body(node.child)}{group}"
        if isinstance(node, Project):
            distinct = "DISTINCT " if node.distinct else ""
            names = ", ".join(self.ident(name) for name in node.attributes)
            return f"SELECT {distinct}{names} {self.body(node.child)}"
        if isinstance(node, Union):
            if len(node.inputs) < 2:
                raise SqlPrintError(
                    f"cannot print a Union of {len(node.inputs)} input(s)"
                )
            parts = []
            for member in node.inputs:
                text = self.statement(member)
                parts.append(f"({text})" if isinstance(member, Union) else text)
            return " UNION ".join(parts)
        return f"SELECT * {self.body(node)}"

    def body(self, node: QueryNode) -> str:
        """``FROM ... [WHERE ...]`` for the tree below a projection/aggregate."""
        differences: list[Difference] = []
        while isinstance(node, Difference):
            differences.append(node)
            node = node.left
        differences.reverse()  # innermost first = original conjunct order
        predicate = None
        if isinstance(node, Select):
            predicate = node.predicate
            node = node.child
        clauses: list[str] = []
        if predicate is not None and not isinstance(predicate, TruePredicate):
            clauses.append(self.predicate(predicate))
        for difference in differences:
            if not difference.on:
                raise SqlPrintError("cannot print a Difference with no key columns")
            keys = ", ".join(self.ident(key) for key in difference.on)
            clauses.append(f"({keys}) NOT IN ({self.statement(difference.right)})")
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return f"FROM {self.from_expr(node)}{where}"

    def from_expr(self, node: QueryNode) -> str:
        if isinstance(node, Scan):
            return self.ident(node.relation)
        if isinstance(node, Join):
            return self.join_expr(node)
        return f"({self.statement(node)})"

    def join_expr(self, node: Join) -> str:
        if isinstance(node.left, Join):
            left_sql = self.join_expr(node.left)
        elif isinstance(node.left, Scan):
            left_sql = self.ident(node.left.relation)
        else:
            left_sql = f"({self.statement(node.left)})"
        taken = _scan_names(node.left)
        if isinstance(node.right, Scan):
            if node.right.relation in taken:
                alias = self._fresh_alias()
                right_sql = f"{self.ident(node.right.relation)} AS {self.ident(alias)}"
            else:
                alias = node.right.relation
                right_sql = self.ident(node.right.relation)
        else:
            alias = self._fresh_alias()
            right_sql = f"({self.statement(node.right)}) AS {self.ident(alias)}"
        clauses = [
            f"{self.ident(left_attr)} = {self.ident(alias)}.{self.ident(right_attr)}"
            for left_attr, right_attr in node.on
        ]
        if node.condition is not None and not isinstance(node.condition, TruePredicate):
            # Parenthesize the extra condition so the re-parser cannot read a
            # same-side equality inside it (e.g. ``A.k = A.v`` lowered to
            # names of the combined schema) as another cross-side join pair.
            text = self.predicate(node.condition)
            if not text.startswith("("):
                text = f"({text})"
            clauses.append(text)
        if not clauses:
            clauses = ["TRUE"]
        return f"{left_sql} JOIN {right_sql} ON {' AND '.join(clauses)}"

    # -- predicates ---------------------------------------------------------------
    def predicate(self, predicate: Predicate) -> str:
        if isinstance(predicate, Comparison):
            return (
                f"{self.ident(predicate.attribute)} {predicate.op} "
                f"{self.literal(predicate.value)}"
            )
        if isinstance(predicate, AttributeComparison):
            return (
                f"{self.ident(predicate.left)} {predicate.op} "
                f"{self.ident(predicate.right)}"
            )
        if isinstance(predicate, Membership):
            values = ", ".join(self.literal(value) for value in predicate.values)
            return f"{self.ident(predicate.attribute)} IN ({values})"
        if isinstance(predicate, Contains):
            needle = predicate.needle
            if any(wildcard in needle for wildcard in _WILDCARDS):
                raise SqlPrintError(
                    f"cannot print Contains needle {needle!r} "
                    "(would collide with LIKE wildcards)"
                )
            return f"{self.ident(predicate.attribute)} LIKE {self.literal('%' + needle + '%')}"
        if isinstance(predicate, IsNull):
            negate = "NOT " if predicate.negate else ""
            return f"{self.ident(predicate.attribute)} IS {negate}NULL"
        if isinstance(predicate, Not):
            return f"(NOT {self.predicate(predicate.child)})"
        if isinstance(predicate, And):
            return "(" + " AND ".join(self.predicate(c) for c in predicate.children) + ")"
        if isinstance(predicate, Or):
            return "(" + " OR ".join(self.predicate(c) for c in predicate.children) + ")"
        if isinstance(predicate, TruePredicate):
            return "TRUE"
        raise SqlPrintError(
            f"cannot express predicate {predicate!r} in SQL "
            "(ad-hoc predicates have no SQL form)"
        )

    # -- atoms --------------------------------------------------------------------
    def ident(self, name: str) -> str:
        if _BARE_IDENT.match(name) and name.upper() not in KEYWORDS:
            return name
        if '"' in name:
            raise SqlPrintError(
                f"cannot quote identifier {name!r} (contains a double quote)"
            )
        return f'"{name}"'

    def literal(self, value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, float):
            if not math.isfinite(value):
                raise SqlPrintError(f"cannot print non-finite float {value!r}")
            return repr(value)
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        raise SqlPrintError(f"cannot print literal {value!r} of type {type(value).__name__}")


def _scan_names(node: QueryNode) -> set[str]:
    """Base-relation names appearing anywhere in a FROM-side tree."""
    if isinstance(node, Scan):
        return {node.relation}
    if isinstance(node, Join):
        return _scan_names(node.left) | _scan_names(node.right)
    return set()

"""Name resolution against a :class:`~repro.relational.executor.Database`.

The binder tracks, for every FROM source, which columns it contributes and
what each of them is called in the *output schema* of the accumulated query
tree.  Join concatenation renames clashing right-side columns exactly like
:meth:`repro.relational.schema.Schema.concat` does (``x`` -> ``x_r`` ->
``x_r2`` ...), so bound predicates reference the names the executor will
actually put in each row record.

Two modes:

* **strict** (a database is given): relation and column names are validated
  and misspellings produce :class:`~repro.sql.errors.BindError` with the
  source position and a did-you-mean suggestion;
* **lenient** (``db=None``): schemas are unknown, names pass through
  unchecked -- used by the CLI to validate syntax without data and by
  ``query_from_spec`` when no database context is available.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.relational.executor import Database
from repro.relational.errors import UnknownRelationError
from repro.relational.schema import concat_names as concat_output
from repro.sql import ast
from repro.sql.errors import BindError


@dataclass
class SourceBinding:
    """One FROM source: its alias, columns, and their current output names."""

    alias: str | None
    columns: tuple[str, ...] | None          # None = unknown (lenient mode)
    output_of: dict[str, str] = field(default_factory=dict)

    def has_column(self, name: str) -> bool:
        return self.columns is None or name in self.columns

    def output_name(self, name: str) -> str:
        return self.output_of.get(name, name)


@dataclass
class TreeScope:
    """The binding state of one lowered query tree (node + name environment)."""

    bindings: list[SourceBinding]
    columns: tuple[str, ...] | None          # output schema names, in order
    source: str                              # original SQL text (for errors)
    lenient: bool = False

    # -- resolution ---------------------------------------------------------------
    def resolve(self, ref: ast.ColumnRef) -> str:
        """The output-schema name a column reference denotes.

        Unqualified names resolve directly against the output schema (which
        is what the executor keys row records by); qualified names resolve
        through their source, following any join renames -- so ``mi.m_id``
        can reach a column whose output name became ``m_id_r``.
        """
        if ref.table is not None:
            binding = self._binding_for_alias(ref)
            if not binding.has_column(ref.name):
                raise self._unknown_column(ref, binding.columns or ())
            return binding.output_name(ref.name)
        if self.columns is not None:
            if ref.name in self.columns:
                return ref.name
            if not self.lenient:
                raise self._unknown_column(ref, self.columns)
        return ref.name

    def membership(self, ref: ast.ColumnRef) -> bool | None:
        """Does this scope contain the reference?  ``None`` = unknowable.

        Qualified references are decidable even in lenient mode (aliases are
        syntax-level); unqualified ones are only decidable when the output
        schema is known.
        """
        if ref.table is not None:
            matches = [b for b in self.bindings if b.alias == ref.table]
            if not matches:
                return False
            if any(b.columns is None for b in matches):
                return True
            return any(ref.name in b.columns for b in matches)
        if self.columns is None:
            return None
        return ref.name in self.columns

    def can_resolve(self, ref: ast.ColumnRef) -> bool:
        return self.membership(ref) is not False

    def _binding_for_alias(self, ref: ast.ColumnRef) -> SourceBinding:
        matches = [b for b in self.bindings if b.alias == ref.table]
        if not matches:
            known = sorted({b.alias for b in self.bindings if b.alias})
            raise BindError(
                f"unknown table or alias {ref.table!r}; in scope: {known}",
                position=ref.position,
                source=self.source,
            )
        if len(matches) > 1:
            raise BindError(
                f"table name {ref.table!r} appears more than once in FROM; "
                "give each occurrence a distinct alias",
                position=ref.position,
                source=self.source,
            )
        return matches[0]

    def _unknown_column(self, ref: ast.ColumnRef, available) -> BindError:
        hint = ""
        close = difflib.get_close_matches(ref.name, list(available), n=1)
        if close:
            hint = f"; did you mean {close[0]!r}?"
        where = f" in {ref.table!r}" if ref.table else ""
        return BindError(
            f"unknown column {ref.name!r}{where}; available: {sorted(available)}{hint}",
            position=ref.position,
            source=self.source,
        )


# ---------------------------------------------------------------------------
# Scope construction.
# ---------------------------------------------------------------------------

def bind_table(
    db: Database | None, name: str, position: int, source: str
) -> tuple[str, ...] | None:
    """Column names of a base relation (None in lenient mode)."""
    if db is None:
        return None
    try:
        return db.relation(name).schema.names
    except UnknownRelationError as exc:
        hint = ""
        close = difflib.get_close_matches(name, list(exc.known), n=1)
        if close:
            hint = f"; did you mean {close[0]!r}?"
        raise BindError(
            f"unknown relation {name!r}; database has {sorted(exc.known)}{hint}",
            position=position,
            source=source,
        ) from None


def scope_for_source(
    alias: str | None,
    columns: tuple[str, ...] | None,
    source: str,
    lenient: bool,
) -> TreeScope:
    """A single-source scope (one table or one subquery)."""
    binding = SourceBinding(alias=alias, columns=columns)
    return TreeScope([binding], columns, source, lenient=lenient)


def join_scopes(left: TreeScope, right: TreeScope) -> TreeScope:
    """The scope of ``Join(left_tree, right_tree)``.

    Left-side output names survive unchanged; right-side names go through the
    rename map.  Right-side bindings' existing renames compose with the new
    ones so deep join chains stay addressable through their original aliases.
    """
    if left.columns is not None and right.columns is not None:
        combined, renamed = concat_output(left.columns, right.columns)
    else:
        combined, renamed = None, {}
    new_bindings = list(left.bindings)
    for binding in right.bindings:
        composed = {
            src: renamed.get(out, out) for src, out in binding.output_of.items()
        }
        if binding.columns is not None:
            for name in binding.columns:
                if name not in composed:
                    composed[name] = renamed.get(name, name)
        new_bindings.append(
            SourceBinding(binding.alias, binding.columns, composed)
        )
    return TreeScope(
        new_bindings, combined, left.source, lenient=left.lenient or right.lenient
    )

"""Error hierarchy of the SQL frontend, with source positions.

Every error raised while tokenizing, parsing or binding a SQL string carries
the character offset it refers to, so callers (the CLI, the service API and
the tests) can render a caret pointing at the offending token::

    SELECT COUNT(title) FORM Movie
                        ^^^^
    line 1, column 21: expected FROM, found identifier 'FORM'
"""

from __future__ import annotations


class SqlError(ValueError):
    """Base class for all SQL frontend errors.

    ``position`` is a 0-based character offset into the source string (or
    ``None`` when no position applies, e.g. printing errors).  ``line`` and
    ``column`` are 1-based and derived lazily from the source text.
    """

    def __init__(self, message: str, *, position: int | None = None, source: str | None = None):
        self.bare_message = message
        self.position = position
        self.source = source
        super().__init__(self._format(message, position, source))

    @staticmethod
    def _format(message: str, position: int | None, source: str | None) -> str:
        if position is None or source is None:
            return message
        line, column = line_and_column(source, position)
        return f"line {line}, column {column}: {message}"

    @property
    def line(self) -> int | None:
        if self.position is None or self.source is None:
            return None
        return line_and_column(self.source, self.position)[0]

    @property
    def column(self) -> int | None:
        if self.position is None or self.source is None:
            return None
        return line_and_column(self.source, self.position)[1]

    def describe(self) -> str:
        """The error message plus a caret-annotated source excerpt."""
        if self.position is None or self.source is None:
            return str(self)
        line_no, column = line_and_column(self.source, self.position)
        lines = self.source.splitlines()
        # An end-of-input position after a trailing newline lands one past
        # the last splitlines() entry; point the caret at an empty line.
        line_text = lines[line_no - 1] if 0 < line_no <= len(lines) else ""
        caret = " " * (column - 1) + "^"
        return f"{line_text}\n{caret}\n{self}"


class LexError(SqlError):
    """Raised when the tokenizer hits a character it cannot interpret."""


class ParseError(SqlError):
    """Raised on a grammar violation.

    ``expected`` lists the token kinds/keywords the parser would have
    accepted at this point; ``found`` describes the actual token.
    """

    def __init__(
        self,
        message: str,
        *,
        position: int | None = None,
        source: str | None = None,
        expected: tuple[str, ...] = (),
        found: str = "",
    ):
        self.expected = tuple(expected)
        self.found = found
        super().__init__(message, position=position, source=source)


class BindError(SqlError):
    """Raised when a name cannot be resolved against the database schema."""


class SqlPrintError(SqlError):
    """Raised when a query AST contains constructs ``to_sql`` cannot express
    (e.g. ad-hoc callable predicates)."""


def line_and_column(source: str, position: int) -> tuple[int, int]:
    """1-based (line, column) of a character offset in ``source``."""
    clamped = max(0, min(position, len(source)))
    prefix = source[:clamped]
    line = prefix.count("\n") + 1
    last_newline = prefix.rfind("\n")
    column = clamped - last_newline
    return line, column

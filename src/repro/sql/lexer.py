"""Tokenizer for the SQL subset of the paper's query class.

Produces a flat list of :class:`Token` with character offsets, which the
recursive-descent parser (:mod:`repro.sql.parser`) consumes.  The lexer knows:

* keywords (case-insensitive; ``SELECT``, ``FROM``, ``JOIN`` ...);
* identifiers (bare or double-quoted, e.g. ``"Table"`` to escape a keyword);
* string literals in single quotes with ``''`` escaping;
* integer and float numerics (``1994``, ``4.5``, ``1e-3``);
* operators and punctuation (``= == != <> < <= > >= ( ) , . *``);
* comments (``-- to end of line`` and ``/* block */``).

The five aggregate function names (SUM/COUNT/AVG/MAX/MIN) are deliberately
*not* keywords -- they are ordinary identifiers that the parser recognizes by
context (identifier followed by ``(`` in a select list), so relations or
columns may freely be named ``count`` or ``min``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.errors import LexError

# Keyword set, uppercase.  TRUE/FALSE/NULL lex as keywords and become literals
# in the parser.
KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "AS", "FROM", "JOIN", "ON", "WHERE",
        "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
        "GROUP", "BY", "UNION", "EXCEPT", "TRUE", "FALSE",
    }
)

# Token kinds.
KEYWORD = "keyword"        # value = uppercase keyword text
IDENT = "identifier"       # value = identifier text (case preserved)
STRING = "string"          # value = decoded string
NUMBER = "number"          # value = int or float
SYMBOL = "symbol"          # value = operator / punctuation text
EOF = "eof"

_SYMBOLS = (
    # longest first so that e.g. "<=" wins over "<"
    "==", "!=", "<>", "<=", ">=", "=", "<", ">", "(", ")", ",", ".", "*", "-", "+",
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexed token with its character offset into the source."""

    kind: str
    value: object
    position: int
    text: str = ""

    def describe(self) -> str:
        """Human-readable form used in parser error messages."""
        if self.kind is EOF or self.kind == EOF:
            return "end of input"
        if self.kind == KEYWORD:
            return str(self.value)
        if self.kind == SYMBOL:
            return f"{self.value!r}"
        if self.kind == STRING:
            return f"string {self.value!r}"
        if self.kind == NUMBER:
            return f"number {self.value!r}"
        return f"identifier {self.text or self.value!r}"

    def matches(self, kind: str, value: object = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        # -- whitespace ------------------------------------------------------
        if ch in " \t\r\n":
            i += 1
            continue
        # -- comments --------------------------------------------------------
        if source.startswith("--", i):
            end = source.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", position=i, source=source)
            i = end + 2
            continue
        # -- string literal --------------------------------------------------
        if ch == "'":
            start = i
            value, i = _read_string(source, i)
            tokens.append(Token(STRING, value, start, text=value))
            continue
        # -- quoted identifier ----------------------------------------------
        if ch == '"':
            end = source.find('"', i + 1)
            if end < 0:
                raise LexError("unterminated quoted identifier", position=i, source=source)
            name = source[i + 1 : end]
            if not name:
                raise LexError("empty quoted identifier", position=i, source=source)
            tokens.append(Token(IDENT, name, i, text=name))
            i = end + 1
            continue
        # -- numerics --------------------------------------------------------
        if ch in _DIGITS or (ch == "." and i + 1 < n and source[i + 1] in _DIGITS):
            value, i, text = _read_number(source, i)
            tokens.append(Token(NUMBER, value, i - len(text), text=text))
            continue
        # -- identifiers / keywords -----------------------------------------
        if ch in _IDENT_START:
            start = i
            while i < n and source[i] in _IDENT_CONT:
                i += 1
            word = source[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start, text=word))
            else:
                tokens.append(Token(IDENT, word, start, text=word))
            continue
        # -- symbols ---------------------------------------------------------
        for symbol in _SYMBOLS:
            if source.startswith(symbol, i):
                tokens.append(Token(SYMBOL, symbol, i, text=symbol))
                i += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", position=i, source=source)
    tokens.append(Token(EOF, None, n))
    return tokens


def _read_string(source: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``start``; '' escapes a quote."""
    pieces: list[str] = []
    i = start + 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "'":
            if i + 1 < n and source[i + 1] == "'":
                pieces.append("'")
                i += 2
                continue
            return "".join(pieces), i + 1
        pieces.append(ch)
        i += 1
    raise LexError("unterminated string literal", position=start, source=source)


def _read_number(source: str, start: int) -> tuple[int | float, int, str]:
    """Read an integer or float literal; returns (value, end, text)."""
    i = start
    n = len(source)
    is_float = False
    while i < n and source[i] in _DIGITS:
        i += 1
    if i < n and source[i] == ".":
        # A dot only continues the number when followed by a digit, so that
        # qualified names like ``1.x`` never arise (``t.c`` starts with an
        # identifier and is handled elsewhere).
        if i + 1 < n and source[i + 1] in _DIGITS:
            is_float = True
            i += 1
            while i < n and source[i] in _DIGITS:
                i += 1
        elif i == start:
            raise LexError("malformed number", position=start, source=source)
    if i < n and source[i] in "eE":
        j = i + 1
        if j < n and source[j] in "+-":
            j += 1
        if j < n and source[j] in _DIGITS:
            is_float = True
            i = j
            while i < n and source[i] in _DIGITS:
                i += 1
    text = source[start:i]
    value: int | float = float(text) if is_float else int(text)
    return value, i, text

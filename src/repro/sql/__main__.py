"""SQL frontend CLI: ``python -m repro.sql``.

Modes:

* ``python -m repro.sql "SELECT COUNT(Major) FROM Major"`` -- parse, lower
  and pretty-print one query (bind against a dataset with ``--dataset``);
* ``--plan`` -- EXPLAIN: print the optimized physical plan with per-operator
  row counts and timings (with a SQL string + ``--dataset``), or -- given no
  SQL -- run the plan smoke: plan every catalog query of the bundled
  datasets, execute it, and assert fingerprint equivalence (rows + lineage)
  against the naive interpreter;
* ``--plan-fuzz N [--seed S]`` -- planner fuzz equivalence: N random
  well-formed queries must produce fingerprint-identical results under the
  naive interpreter and the optimizing planner;
* ``--stats-fuzz N [--seed S]`` -- statistics fuzz equivalence: N random
  multi-join queries over a skewed star database, planned with ANALYZE
  statistics (cost-based join reordering included), must stay
  fingerprint-identical to the naive interpreter; every failure prints the
  offending seed and SQL for exact reproduction;
* ``--explain --left SQL --right SQL --dataset academic`` -- run the full
  Explain3D pipeline from two SQL strings over a generated dataset pair;
* ``--fuzz N [--seed S]`` -- the CI smoke: N random well-formed queries must
  parse, bind, lower, execute and survive a ``to_sql`` round trip;
* ``--self-test`` -- golden-catalog round trips + fuzz batches (parser and
  planner) + the plan smoke + one full SQL-driven explain; exits non-zero on
  any failure.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.relational.executor import Database, execute
from repro.sql import SqlError, node_to_sql, parse_query
from repro.sql.fuzz import (
    random_query_sql,
    random_stats_query_sql,
    stats_database,
    toy_database,
)


def _load_dataset(name: str):
    """(db_left, db_right, attribute_matches) of a named dataset pair."""
    if name == "figure1":
        from repro.datasets.sql_catalog import figure1_databases

        return figure1_databases()
    if name == "academic":
        from repro.datasets.academic import generate_academic_pair

        pair = generate_academic_pair()
    elif name == "synthetic":
        from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair

        pair = generate_synthetic_pair(SyntheticConfig(num_tuples=200, seed=42))
    elif name == "imdb":
        from repro.datasets.imdb import generate_imdb_workload

        workload = generate_imdb_workload()
        pair = workload.pair("Q3", workload.years_with_movies()[0])
    else:
        raise SystemExit(f"unknown dataset {name!r}; "
                         "choose figure1, academic, synthetic or imdb")
    return pair.db_left, pair.db_right, pair.attribute_matches


def _print_query(sql: str, db: Database | None, name: str, *, show_plan: bool = False) -> int:
    try:
        query = parse_query(sql, db, name=name)
    except SqlError as exc:
        print(exc.describe(), file=sys.stderr)
        return 1
    print(f"-- {query.name} (fingerprint {query.fingerprint()[:16]})")
    print(f"ast: {query.root!r}")
    print(f"sql: {node_to_sql(query.root)}")
    if show_plan and db is None:
        print("--plan needs --dataset to bind and execute against", file=sys.stderr)
        return 1
    if db is not None:
        result = execute(query, db)
        print(f"result: {len(result)} row(s) over {list(result.schema.names)}")
        if show_plan:
            from repro.plan import plan_query
            from repro.plan.planner import PlanExplanation

            # ANALYZE first so EXPLAIN shows the cost-based join order and
            # per-operator q-errors of the statistics-backed plan.
            stats = db.analyze()
            print(f"analyze: collected statistics for {len(stats)} relation(s)")
            plan = plan_query(query, db)
            planned, stats = plan.execute_with_stats()
            print(PlanExplanation(plan, stats).describe())
            if planned.fingerprint() != result.fingerprint():
                print("PLAN MISMATCH: planned result diverges from the naive "
                      "interpreter", file=sys.stderr)
                return 1
    return 0


def _run_plan_smoke(verbose: bool = False) -> int:
    """Plan + execute *every* catalog query; 0 = all fingerprint-identical.

    The enumeration comes from :func:`repro.datasets.sql_catalog.catalog_queries`
    (Figure 1, academic, synthetic and all ten IMDb templates), so datasets
    added to the catalog are covered here automatically.
    """
    from repro.datasets.sql_catalog import catalog_queries
    from repro.plan import plan_query
    from repro.relational.provenance import provenance_relation

    failures = 0
    analyzed: set[int] = set()
    for label, query, db in catalog_queries():
        naive = execute(query, db)
        plan = plan_query(query, db)
        planned, stats = plan.execute_with_stats()
        provenance_ok = (
            provenance_relation(query, db, planner="naive").tuples
            == provenance_relation(query, db, planner="optimized").tuples
        )
        if planned.fingerprint() != naive.fingerprint() or not provenance_ok:
            failures += 1
            print(f"PLAN MISMATCH on {label}", file=sys.stderr)
            print(plan.describe(), file=sys.stderr)
            continue
        # Second pass with ANALYZE statistics: the cost-based plan (join
        # reordering included) must stay fingerprint-identical too.
        if id(db) not in analyzed:
            db.analyze()
            analyzed.add(id(db))
        stats_plan = plan_query(query, db)
        if stats_plan.execute().fingerprint() != naive.fingerprint():
            failures += 1
            print(f"STATS PLAN MISMATCH on {label}", file=sys.stderr)
            print(stats_plan.describe(), file=sys.stderr)
            continue
        rewrites = len(plan.rewrites.applied)
        print(f"plan ok: {label} ({len(plan.operators)} operators, "
              f"{rewrites} rewrites, {stats.rows_out} rows, stats ok)")
        if verbose:
            print(stats_plan.describe())
    print(f"plan smoke: {'FAILED' if failures else 'ok'}")
    return 1 if failures else 0


def _run_plan_fuzz(count: int, seed: int, verbose: bool = False) -> int:
    """Planned (columnar) vs naive execution of ``count`` random queries.

    Each query runs three ways -- the naive row interpreter, the columnar
    planner at the default batch size, and the columnar planner again at a
    tiny batch size (7 rows) -- and all three must be fingerprint-identical
    (rows + order + lineage).  The tiny-batch pass proves chunking touches
    batch boundaries only, never results.
    """
    from repro.plan import plan_query

    db = toy_database()
    failures = 0
    for round_index in range(count):
        rng = random.Random(seed + round_index)
        sql = random_query_sql(rng, db)
        try:
            query = parse_query(sql, db, name=f"PF{round_index}")
            naive = execute(query, db)
            planned = execute(query, db, planner="optimized")
            if naive.fingerprint() != planned.fingerprint():
                raise AssertionError("planned result diverges from naive execution")
            chunked = plan_query(query, db).execute(batch_size=7)
            if chunked.fingerprint() != naive.fingerprint():
                raise AssertionError(
                    "columnar result at batch_size=7 diverges from naive execution"
                )
        except Exception as exc:  # noqa: BLE001 - report and count every failure
            failures += 1
            print(f"PLAN FUZZ FAILURE (seed {seed + round_index}): {sql}", file=sys.stderr)
            print(f"  {type(exc).__name__}: {exc}", file=sys.stderr)
        else:
            if verbose:
                print(f"ok (seed {seed + round_index}): {sql}")
    print(
        f"plan fuzz: {count - failures}/{count} queries fingerprint-identical "
        f"(naive = columnar = columnar@batch_size=7)"
    )
    return 1 if failures else 0


def _run_stats_fuzz(count: int, seed: int, verbose: bool = False) -> int:
    """Statistics-backed planning vs naive execution of ``count`` random
    queries over the skewed star database; 0 = all fingerprint-identical.

    Every failure prints the seed that produced it plus the query SQL, so
    ``--stats-fuzz 1 --seed <failing seed>`` reproduces it exactly.
    """
    db = stats_database()
    db.analyze()
    failures = 0
    for round_index in range(count):
        rng = random.Random(seed + round_index)
        sql = random_stats_query_sql(rng, db)
        try:
            query = parse_query(sql, db, name=f"SF{round_index}")
            naive = execute(query, db, planner="naive")
            planned = execute(query, db, planner="optimized")
            if naive.fingerprint() != planned.fingerprint():
                raise AssertionError(
                    "statistics-backed plan diverges from naive execution"
                )
        except Exception as exc:  # noqa: BLE001 - report and count every failure
            failures += 1
            print(f"STATS FUZZ FAILURE (seed {seed + round_index}): {sql}",
                  file=sys.stderr)
            print(f"  {type(exc).__name__}: {exc}", file=sys.stderr)
        else:
            if verbose:
                print(f"ok (seed {seed + round_index}): {sql}")
    print(f"stats fuzz: {count - failures}/{count} queries fingerprint-identical")
    return 1 if failures else 0


def _run_fuzz(count: int, seed: int, verbose: bool = False) -> int:
    """Parse/lower/execute/round-trip ``count`` random queries; 0 = all good."""
    db = toy_database()
    failures = 0
    for round_index in range(count):
        rng = random.Random(seed + round_index)
        sql = random_query_sql(rng, db)
        try:
            query = parse_query(sql, db, name=f"F{round_index}")
            execute(query, db)
            printed = node_to_sql(query.root)
            reparsed = parse_query(printed, db, name=f"F{round_index}")
            if reparsed.fingerprint() != query.fingerprint():
                raise AssertionError(
                    f"round trip changed the AST:\n  in:  {sql}\n  out: {printed}"
                )
        except Exception as exc:  # noqa: BLE001 - report and count every failure
            failures += 1
            print(f"FUZZ FAILURE (seed {seed + round_index}): {sql}", file=sys.stderr)
            print(f"  {type(exc).__name__}: {exc}", file=sys.stderr)
        else:
            if verbose:
                print(f"ok (seed {seed + round_index}): {sql}")
    print(f"fuzz: {count - failures}/{count} queries ok")
    return 1 if failures else 0


def _run_explain(left_sql: str, right_sql: str, dataset: str) -> int:
    from repro.core.explain3d import Explain3D, Explain3DConfig

    db_left, db_right, matches = _load_dataset(dataset)
    try:
        query_left = parse_query(left_sql, db_left, name="Q1")
        query_right = parse_query(right_sql, db_right, name="Q2")
    except SqlError as exc:
        print(exc.describe(), file=sys.stderr)
        return 1
    engine = Explain3D(Explain3DConfig(partitioning="none"))
    report = engine.explain(
        query_left, db_left, query_right, db_right, attribute_matches=matches
    )
    print(report.describe())
    return 0


def _self_test() -> int:
    from repro.datasets.sql_catalog import catalog_self_check

    print("catalog:", catalog_self_check())
    status = _run_fuzz(60, seed=1000)
    if status:
        return status
    status = _run_plan_smoke()
    if status:
        return status
    status = _run_plan_fuzz(60, seed=2000)
    if status:
        return status
    status = _run_stats_fuzz(60, seed=3000)
    if status:
        return status
    print("explain: figure1 from two SQL strings ...")
    status = _run_explain(
        "SELECT COUNT(Program) FROM D1",
        "SELECT COUNT(Major) FROM D2 WHERE Univ = 'A'",
        "figure1",
    )
    if status:
        return status
    print("sql self-test ok: catalog + fuzz + plan equivalence + SQL-driven "
          "explain passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sql",
        description="Parse, validate, pretty-print and explain Explain3D SQL queries",
    )
    parser.add_argument("sql", nargs="?", help="a SQL query to parse and lower")
    parser.add_argument("--dataset", default=None,
                        help="bind against a generated dataset pair "
                             "(figure1, academic, synthetic, imdb)")
    parser.add_argument("--side", choices=("left", "right"), default="left",
                        help="which database of the pair to bind a single query against")
    parser.add_argument("--name", default="Q", help="query name for fingerprints")
    parser.add_argument("--explain", action="store_true",
                        help="run a full explain from --left and --right SQL strings")
    parser.add_argument("--left", default=None, help="left query SQL for --explain")
    parser.add_argument("--right", default=None, help="right query SQL for --explain")
    parser.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="generate and check N random well-formed queries")
    parser.add_argument("--plan", action="store_true",
                        help="print the optimized physical plan (EXPLAIN); "
                             "without a SQL string, run the catalog plan smoke")
    parser.add_argument("--plan-fuzz", type=int, default=0, metavar="N",
                        help="check N random queries for planned-vs-naive "
                             "fingerprint equivalence")
    parser.add_argument("--stats-fuzz", type=int, default=0, metavar="N",
                        help="check N random multi-join queries for "
                             "statistics-backed-plan-vs-naive equivalence")
    parser.add_argument("--seed", type=int, default=0, help="fuzz base seed")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="catalog round trips + fuzz batch + one SQL explain")
    args = parser.parse_args(argv)

    if args.self_test:
        return _self_test()
    if args.fuzz:
        return _run_fuzz(args.fuzz, args.seed, verbose=args.verbose)
    if args.plan_fuzz:
        return _run_plan_fuzz(args.plan_fuzz, args.seed, verbose=args.verbose)
    if args.stats_fuzz:
        return _run_stats_fuzz(args.stats_fuzz, args.seed, verbose=args.verbose)
    if args.plan and not args.sql:
        return _run_plan_smoke(verbose=args.verbose)
    if args.explain:
        if not args.left or not args.right:
            parser.error("--explain needs --left and --right SQL strings")
        return _run_explain(args.left, args.right, args.dataset or "figure1")
    if not args.sql:
        parser.error("give a SQL string, --plan, --fuzz N, --plan-fuzz N, "
                     "--stats-fuzz N, --explain or --self-test")
    db = None
    if args.dataset:
        db_left, db_right, _ = _load_dataset(args.dataset)
        db = db_left if args.side == "left" else db_right
    return _print_query(args.sql, db, args.name, show_plan=args.plan)


if __name__ == "__main__":
    sys.exit(main())

"""Recursive-descent parser for the Explain3D SQL subset.

Grammar (keywords case-insensitive)::

    statement    := select_unit ((UNION | EXCEPT) select_unit)*
    select_unit  := select_core | '(' statement ')'
    select_core  := SELECT [DISTINCT] select_list
                    FROM from_item (',' from_item)*
                    [WHERE bool_expr] [GROUP BY ref (',' ref)*]
    select_list  := '*' | item (',' item)*
    item         := AGG '(' ('*' | ref) ')' [[AS] ident] | ref [AS ident]
    from_item    := source (JOIN source ON bool_expr)*
    source       := ident [[AS] ident] | '(' statement ')' [[AS] ident]
    bool_expr    := and_expr (OR and_expr)*          -- left-associative
    and_expr     := not_expr (AND not_expr)*         -- left-associative
    not_expr     := NOT not_expr | primary
    primary      := '(' bool_expr ')'
                  | '(' ref (',' ref)* ')' [NOT] IN '(' statement ')'
                  | TRUE | FALSE
                  | operand postfix
    postfix      := cmp_op operand
                  | [NOT] IN '(' (statement | literal_list) ')'
                  | [NOT] BETWEEN literal AND literal
                  | [NOT] LIKE string
                  | IS [NOT] NULL
    operand      := ref | literal
    ref          := ident ['.' ident]

AND/OR chains build *left-nested binary* trees, mirroring how the fluent
``col(...) & col(...)`` builders nest, so lowered predicates are
fingerprint-identical to hand-built ones.
"""

from __future__ import annotations

from repro.sql import ast
from repro.sql.errors import ParseError
from repro.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    STRING,
    SYMBOL,
    Token,
    tokenize,
)

AGGREGATE_FUNCTIONS = ("SUM", "COUNT", "AVG", "MAX", "MIN")

_COMPARISON_OPS = ("=", "==", "!=", "<>", "<", "<=", ">", ">=")


def parse(source: str) -> ast.Statement:
    """Parse a SQL string into a syntactic :class:`~repro.sql.ast.Statement`."""
    parser = Parser(source)
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


class Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == KEYWORD and token.value in keywords

    def at_symbol(self, *symbols: str) -> bool:
        token = self.peek()
        return token.kind == SYMBOL and token.value in symbols

    def accept_keyword(self, *keywords: str) -> Token | None:
        if self.at_keyword(*keywords):
            return self.advance()
        return None

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.at_symbol(*symbols):
            return self.advance()
        return None

    def error(self, *expected: str) -> ParseError:
        token = self.peek()
        wanted = ", ".join(expected)
        return ParseError(
            f"expected {wanted}, found {token.describe()}",
            position=token.position,
            source=self.source,
            expected=tuple(expected),
            found=token.describe(),
        )

    def expect_keyword(self, keyword: str) -> Token:
        token = self.accept_keyword(keyword)
        if token is None:
            raise self.error(keyword)
        return token

    def expect_symbol(self, symbol: str) -> Token:
        token = self.accept_symbol(symbol)
        if token is None:
            raise self.error(f"{symbol!r}")
        return token

    def expect_ident(self, what: str = "identifier") -> Token:
        token = self.peek()
        if token.kind != IDENT:
            raise self.error(what)
        return self.advance()

    def expect_end(self) -> None:
        if self.peek().kind != EOF:
            raise self.error("end of input")

    # -- statements -------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        position = self.peek().position
        first = self.parse_select_unit()
        tail: list[tuple[str, ast.SelectUnit]] = []
        while self.at_keyword("UNION", "EXCEPT"):
            op = self.advance().value
            tail.append((str(op), self.parse_select_unit()))
        if not tail:
            return first
        return ast.CompoundSelect(first=first, tail=tuple(tail), position=position)

    def parse_select_unit(self) -> ast.SelectUnit:
        if self.at_symbol("("):
            position = self.advance().position
            inner = self.parse_statement()
            self.expect_symbol(")")
            return ast.ParenStatement(inner, position=position)
        return self.parse_select_core()

    def parse_select_core(self) -> ast.SelectCore:
        position = self.expect_keyword("SELECT").position
        distinct = self.accept_keyword("DISTINCT") is not None
        items = self.parse_select_list()
        self.expect_keyword("FROM")
        sources = [self.parse_from_item()]
        while self.accept_symbol(","):
            sources.append(self.parse_from_item())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_bool_expr()
        group_by: tuple[ast.ColumnRef, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            refs = [self.parse_ref()]
            while self.accept_symbol(","):
                refs.append(self.parse_ref())
            group_by = tuple(refs)
        return ast.SelectCore(
            items=tuple(items),
            sources=tuple(sources),
            distinct=distinct,
            where=where,
            group_by=group_by,
            position=position,
        )

    # -- select list ------------------------------------------------------------
    def parse_select_list(self) -> list[ast.SelectItem]:
        if self.at_symbol("*"):
            return [ast.Star(self.advance().position)]
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        if (
            token.kind == IDENT
            and str(token.value).upper() in AGGREGATE_FUNCTIONS
            and self.peek(1).matches(SYMBOL, "(")
        ):
            self.advance()
            function = str(token.value).upper()
            self.expect_symbol("(")
            argument: ast.ColumnRef | None = None
            if not self.accept_symbol("*"):
                argument = self.parse_ref()
            self.expect_symbol(")")
            # Aliases need an explicit AS: a bare identifier after an item is
            # far more often a typo (SELECT COUNT(x) FORM ...) than an alias,
            # and the AS-less form would swallow it silently.
            alias = None
            if self.accept_keyword("AS"):
                alias = str(self.expect_ident("alias").value)
            return ast.AggregateItem(function, argument, alias, position=token.position)
        ref = self.parse_ref()
        alias = None
        if self.accept_keyword("AS"):
            alias = str(self.expect_ident("alias").value)
        return ast.ColumnItem(ref, alias, position=ref.position)

    # -- FROM clause -------------------------------------------------------------
    def parse_from_item(self) -> ast.FromSource:
        source: ast.FromSource = self.parse_source()
        while self.at_keyword("JOIN"):
            position = self.advance().position
            right = self.parse_source()
            self.expect_keyword("ON")
            condition = self.parse_bool_expr()
            source = ast.JoinSource(source, right, condition, position=position)
        return source

    def parse_source(self) -> ast.TableSource | ast.SubquerySource:
        if self.at_symbol("("):
            position = self.advance().position
            statement = self.parse_statement()
            self.expect_symbol(")")
            alias = self._parse_optional_alias()
            return ast.SubquerySource(statement, alias, position=position)
        token = self.expect_ident("table name")
        alias = self._parse_optional_alias()
        return ast.TableSource(str(token.value), alias, position=token.position)

    def _parse_optional_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return str(self.expect_ident("alias").value)
        if self.peek().kind == IDENT:
            return str(self.advance().value)
        return None

    # -- boolean expressions ------------------------------------------------------
    def parse_bool_expr(self) -> ast.BoolExpr:
        expr = self.parse_and_expr()
        while self.at_keyword("OR"):
            position = self.advance().position
            expr = ast.OrExpr(expr, self.parse_and_expr(), position=position)
        return expr

    def parse_and_expr(self) -> ast.BoolExpr:
        expr = self.parse_not_expr()
        while self.at_keyword("AND"):
            position = self.advance().position
            expr = ast.AndExpr(expr, self.parse_not_expr(), position=position)
        return expr

    def parse_not_expr(self) -> ast.BoolExpr:
        if self.at_keyword("NOT"):
            position = self.advance().position
            return ast.NotExpr(self.parse_not_expr(), position=position)
        return self.parse_primary()

    def parse_primary(self) -> ast.BoolExpr:
        token = self.peek()
        if token.matches(KEYWORD, "TRUE"):
            self.advance()
            return ast.BoolLiteral(True, position=token.position)
        if token.matches(KEYWORD, "FALSE"):
            self.advance()
            return ast.BoolLiteral(False, position=token.position)
        if self.at_symbol("("):
            if self._looks_like_row_list():
                return self._parse_row_in()
            position = self.advance().position
            inner = self.parse_bool_expr()
            self.expect_symbol(")")
            return ast.ParenExpr(inner, position=position)
        operand = self.parse_operand()
        return self.parse_postfix(operand)

    def _looks_like_row_list(self) -> bool:
        """Lookahead: does ``(`` start ``(ref, ref, ...) [NOT] IN``?

        Refs are regular (``ident ['.' ident]``), so a bounded token scan
        distinguishes a row-value list from a parenthesized boolean
        expression without backtracking.
        """
        offset = 1  # past '('
        while True:
            if self.peek(offset).kind != IDENT:
                return False
            offset += 1
            if self.peek(offset).matches(SYMBOL, "."):
                offset += 1
                if self.peek(offset).kind != IDENT:
                    return False
                offset += 1
            token = self.peek(offset)
            if token.matches(SYMBOL, ","):
                offset += 1
                continue
            if token.matches(SYMBOL, ")"):
                after = self.peek(offset + 1)
                return after.matches(KEYWORD, "IN") or after.matches(KEYWORD, "NOT")
            return False

    def _parse_row_in(self) -> ast.InSelectExpr:
        position = self.expect_symbol("(").position
        refs = [self.parse_ref()]
        while self.accept_symbol(","):
            refs.append(self.parse_ref())
        self.expect_symbol(")")
        negated = self.accept_keyword("NOT") is not None
        self.expect_keyword("IN")
        self.expect_symbol("(")
        statement = self.parse_statement()
        self.expect_symbol(")")
        return ast.InSelectExpr(tuple(refs), statement, negated, position=position)

    def parse_postfix(self, operand: ast.Operand) -> ast.BoolExpr:
        token = self.peek()
        if token.kind == SYMBOL and token.value in _COMPARISON_OPS:
            op = str(self.advance().value)
            right = self.parse_operand()
            return ast.ComparisonExpr(operand, op, right, position=token.position)

        negated = False
        if self.at_keyword("NOT"):
            # postfix negation: NOT IN / NOT BETWEEN / NOT LIKE
            if not self.peek(1).kind == KEYWORD or self.peek(1).value not in (
                "IN", "BETWEEN", "LIKE",
            ):
                raise self.error("IN", "BETWEEN", "LIKE")
            self.advance()
            negated = True

        if self.at_keyword("IN"):
            ref = self._require_ref(operand, "IN")
            position = self.advance().position
            self.expect_symbol("(")
            if self.at_keyword("SELECT") or self.at_symbol("("):
                statement = self.parse_statement()
                self.expect_symbol(")")
                return ast.InSelectExpr((ref,), statement, negated, position=position)
            values: list[ast.Literal] = []
            if not self.at_symbol(")"):
                values.append(self.parse_literal())
                while self.accept_symbol(","):
                    values.append(self.parse_literal())
            self.expect_symbol(")")
            return ast.InListExpr(ref, tuple(values), negated, position=position)

        if self.at_keyword("BETWEEN"):
            ref = self._require_ref(operand, "BETWEEN")
            position = self.advance().position
            low = self.parse_literal()
            self.expect_keyword("AND")
            high = self.parse_literal()
            return ast.BetweenExpr(ref, low, high, negated, position=position)

        if self.at_keyword("LIKE"):
            ref = self._require_ref(operand, "LIKE")
            position = self.advance().position
            pattern = self.peek()
            if pattern.kind != STRING:
                raise self.error("string pattern")
            self.advance()
            return ast.LikeExpr(ref, str(pattern.value), negated, position=position)

        if self.at_keyword("IS"):
            ref = self._require_ref(operand, "IS NULL")
            self.advance()
            is_negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return ast.IsNullExpr(ref, is_negated, position=ref.position)

        raise self.error("comparison operator", "IN", "BETWEEN", "LIKE", "IS")

    def _require_ref(self, operand: ast.Operand, construct: str) -> ast.ColumnRef:
        if not isinstance(operand, ast.ColumnRef):
            raise ParseError(
                f"{construct} requires a column reference on its left side",
                position=operand.position,
                source=self.source,
                expected=("column reference",),
            )
        return operand

    # -- operands ----------------------------------------------------------------
    def parse_operand(self) -> ast.Operand:
        token = self.peek()
        if token.kind == IDENT:
            return self.parse_ref()
        return self.parse_literal()

    def parse_ref(self) -> ast.ColumnRef:
        token = self.expect_ident("column reference")
        if self.at_symbol("."):
            self.advance()
            column = self.expect_ident("column name")
            return ast.ColumnRef(
                str(column.value), table=str(token.value), position=token.position
            )
        return ast.ColumnRef(str(token.value), position=token.position)

    def parse_literal(self) -> ast.Literal:
        token = self.peek()
        if token.kind == STRING:
            self.advance()
            return ast.Literal(token.value, position=token.position)
        if token.kind == NUMBER:
            self.advance()
            return ast.Literal(token.value, position=token.position)
        if token.matches(SYMBOL, "-") or token.matches(SYMBOL, "+"):
            sign = self.advance()
            number = self.peek()
            if number.kind != NUMBER:
                raise self.error("number")
            self.advance()
            value = number.value if sign.value == "+" else -number.value  # type: ignore[operator]
            return ast.Literal(value, position=sign.position)
        if token.matches(KEYWORD, "TRUE"):
            self.advance()
            return ast.Literal(True, position=token.position)
        if token.matches(KEYWORD, "FALSE"):
            self.advance()
            return ast.Literal(False, position=token.position)
        if token.matches(KEYWORD, "NULL"):
            self.advance()
            return ast.Literal(None, position=token.position)
        raise self.error("literal value")

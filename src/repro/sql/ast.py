"""The *syntactic* AST produced by :mod:`repro.sql.parser`.

These nodes mirror the SQL text (qualified names, join chains, compound
operators) and carry source positions for error reporting.  They are distinct
from the *semantic* query AST of :mod:`repro.relational.query`;
:mod:`repro.sql.lower` translates between the two with the help of the binder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Scalar expressions and boolean predicates (syntax level).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference: ``c`` or ``t.c``."""

    name: str
    table: Optional[str] = None
    position: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A constant: string, int, float, bool or NULL (None)."""

    value: object
    position: int = 0


Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class ComparisonExpr:
    """``left op right`` with op in = == != <> < <= > >=."""

    left: Operand
    op: str
    right: Operand
    position: int = 0


@dataclass(frozen=True)
class InListExpr:
    """``ref [NOT] IN (v1, v2, ...)`` over literal values."""

    ref: ColumnRef
    values: tuple[Literal, ...]
    negated: bool = False
    position: int = 0


@dataclass(frozen=True)
class InSelectExpr:
    """``(r1, r2) [NOT] IN (SELECT ...)`` -- lowered to a Difference."""

    refs: tuple[ColumnRef, ...]
    query: "Statement"
    negated: bool = False
    position: int = 0


@dataclass(frozen=True)
class BetweenExpr:
    """``ref [NOT] BETWEEN low AND high``."""

    ref: ColumnRef
    low: Literal
    high: Literal
    negated: bool = False
    position: int = 0


@dataclass(frozen=True)
class LikeExpr:
    """``ref [NOT] LIKE 'pattern'``."""

    ref: ColumnRef
    pattern: str
    negated: bool = False
    position: int = 0


@dataclass(frozen=True)
class IsNullExpr:
    """``ref IS [NOT] NULL``."""

    ref: ColumnRef
    negated: bool = False
    position: int = 0


@dataclass(frozen=True)
class NotExpr:
    operand: "BoolExpr"
    position: int = 0


@dataclass(frozen=True)
class AndExpr:
    """Binary conjunction; chains parse left-associatively."""

    left: "BoolExpr"
    right: "BoolExpr"
    position: int = 0


@dataclass(frozen=True)
class OrExpr:
    """Binary disjunction; chains parse left-associatively."""

    left: "BoolExpr"
    right: "BoolExpr"
    position: int = 0


@dataclass(frozen=True)
class BoolLiteral:
    """``TRUE`` / ``FALSE`` used as a predicate."""

    value: bool
    position: int = 0


@dataclass(frozen=True)
class ParenExpr:
    """An explicitly parenthesized boolean group.

    Kept as a marker node so that top-level AND-conjunct splitting (join
    extraction, NOT IN handling) never reaches inside user parentheses --
    which is what makes ``to_sql`` round trips structure-preserving.
    """

    inner: "BoolExpr"
    position: int = 0


BoolExpr = Union[
    ComparisonExpr, InListExpr, InSelectExpr, BetweenExpr, LikeExpr,
    IsNullExpr, NotExpr, AndExpr, OrExpr, BoolLiteral, ParenExpr,
]


# ---------------------------------------------------------------------------
# Select lists.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Star:
    """``SELECT *``."""

    position: int = 0


@dataclass(frozen=True)
class ColumnItem:
    """A plain output column.  Aliases are rejected at bind time (the
    relational algebra of the paper has no rename operator)."""

    ref: ColumnRef
    alias: Optional[str] = None
    position: int = 0


@dataclass(frozen=True)
class AggregateItem:
    """``FN(column)`` / ``COUNT(*)`` with an optional ``AS alias``."""

    function: str                     # SUM / COUNT / AVG / MAX / MIN (upper)
    argument: Optional[ColumnRef]     # None = COUNT(*)
    alias: Optional[str] = None
    position: int = 0


SelectItem = Union[Star, ColumnItem, AggregateItem]


# ---------------------------------------------------------------------------
# FROM clause sources.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TableSource:
    """A base relation, optionally aliased: ``Movie`` / ``Movie AS m``."""

    name: str
    alias: Optional[str] = None
    position: int = 0


@dataclass(frozen=True)
class SubquerySource:
    """A parenthesized statement in FROM: ``(SELECT ...) [AS alias]``."""

    statement: "Statement"
    alias: Optional[str] = None
    position: int = 0


@dataclass(frozen=True)
class JoinSource:
    """``left JOIN right ON condition`` -- chains nest left-associatively."""

    left: "FromSource"
    right: Union[TableSource, SubquerySource]
    condition: BoolExpr
    position: int = 0


FromSource = Union[TableSource, SubquerySource, JoinSource]


# ---------------------------------------------------------------------------
# Statements.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectCore:
    """One ``SELECT ... FROM ... [WHERE ...] [GROUP BY ...]`` block.

    ``sources`` is the comma-separated FROM list (each element may itself be
    a JOIN chain); equi-join conditions between comma sources are recovered
    from the WHERE clause during lowering.
    """

    items: tuple[SelectItem, ...]
    sources: tuple[FromSource, ...]
    distinct: bool = False
    where: Optional[BoolExpr] = None
    group_by: tuple[ColumnRef, ...] = ()
    position: int = 0


@dataclass(frozen=True)
class ParenStatement:
    """A parenthesized compound used as a unit: ``(a UNION b) EXCEPT c``."""

    statement: "Statement"
    position: int = 0


SelectUnit = Union[SelectCore, ParenStatement]


@dataclass(frozen=True)
class CompoundSelect:
    """``unit (UNION|EXCEPT unit)*`` -- ops apply left-associatively, with
    consecutive UNIONs flattened into one n-ary union during lowering."""

    first: SelectUnit
    tail: tuple[tuple[str, SelectUnit], ...] = field(default_factory=tuple)
    position: int = 0


Statement = Union[SelectCore, CompoundSelect, ParenStatement]

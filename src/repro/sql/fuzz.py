"""Random well-formed SQL query generator.

Drives the CI parser-fuzz smoke step (``python -m repro.sql --fuzz N``) and
the round-trip property tests: every generated query must tokenize, parse,
bind, lower, execute and survive a ``to_sql`` round trip without crashing.

Queries are generated *against a concrete database schema* so that binding
always succeeds and execution is type-safe (aggregates only over numeric
columns, join pairs only between same-typed columns, comparison values drawn
from the actual column domain).
"""

from __future__ import annotations

import random

from repro.relational.executor import Database
from repro.relational.schema import DataType


def toy_database(seed: int = 0, rows: int = 30) -> Database:
    """A small two-relation database with mixed column types and NULLs."""
    rng = random.Random(seed)
    genres = ["drama", "comedy", "action", "noir", "short"]
    cities = ["Amherst", "Columbus", "Seattle", "Boston"]
    left_rows = []
    for index in range(rows):
        left_rows.append(
            {
                "id": index,
                "label": f"{rng.choice(genres)} {rng.choice(cities)}",
                "year": rng.randint(1990, 2005),
                "score": round(rng.uniform(0.0, 10.0), 2),
                "city": rng.choice(cities) if rng.random() > 0.1 else None,
            }
        )
    right_rows = []
    for index in range(rows // 2):
        right_rows.append(
            {
                "rid": rng.randint(0, rows - 1),
                "genre": rng.choice(genres),
                "votes": rng.randint(0, 500),
            }
        )
    db = Database("fuzz")
    db.add_records("R", left_rows)
    db.add_records("S", right_rows)
    return db


def stats_database(seed: int = 0, rows: int = 80) -> Database:
    """A star-shaped four-relation database for the stats (planner) fuzzer.

    One skewed fact table with NULL-bearing foreign keys plus three small
    dimensions -- the regime where cost-based join reordering matters.  All
    column names are unique across relations, so chained joins never rename
    and WHERE clauses can reference any table's columns unqualified.
    """
    rng = random.Random(seed)
    db = Database("statsfuzz")
    tags = ["alpha", "beta", "gamma", "delta", None]
    cities = ["Amherst", "Columbus", "Seattle", None]
    db.add_records(
        "F",
        [
            {
                "fid": index,
                "d1": min(9, int(rng.expovariate(0.5))),  # heavily skewed key
                "d2": rng.randrange(15) if rng.random() > 0.1 else None,
                "d3": rng.randrange(4),
                "amount": round(rng.uniform(1.0, 100.0), 2),
                "tag": rng.choice(tags),
            }
            for index in range(rows)
        ],
    )
    db.add_records(
        "D1",
        [{"k1": index, "grp": rng.choice(["g1", "g2", "g3"])} for index in range(10)],
    )
    db.add_records(
        "D2",
        [
            {"k2": index, "city": rng.choice(cities), "pop": rng.randrange(1000)}
            for index in range(15)
        ],
    )
    db.add_records(
        "D3",
        [{"k3": index, "label": f"L{index}"} for index in range(4)],
    )
    return db


def random_stats_query_sql(rng: random.Random, db: Database) -> str:
    """One random query over the stats database, biased towards join chains."""
    roll = rng.random()
    if roll < 0.55:
        return _chain_join_query(rng, db)
    if roll < 0.75:
        return _join_query(rng, db)
    return _single_table_query(rng, db, rng.choice(sorted(db.relations())))


def _chain_join_query(rng: random.Random, db: Database) -> str:
    """A 3-4 relation fact/dimension join chain (the reordering workload)."""
    dims = [("D1", "d1", "k1"), ("D2", "d2", "k2"), ("D3", "d3", "k3")]
    rng.shuffle(dims)
    chosen = dims[: rng.randint(2, 3)]
    joins = " ".join(
        f"JOIN {dim} ON F.{fact_key} = {dim}.{dim_key}"
        for dim, fact_key, dim_key in chosen
    )
    select = rng.choice(["COUNT(*)", "SUM(amount)", "COUNT(fid)", "*", "AVG(amount)"])
    where = _where(rng, db, "F") if rng.random() < 0.6 else ""
    return f"SELECT {select} FROM F {joins}{where}"


def random_query_sql(rng: random.Random, db: Database) -> str:
    """One random well-formed SQL query over ``db``."""
    shape = rng.random()
    if shape < 0.15:
        return _union_query(rng, db)
    if shape < 0.30:
        return _not_in_query(rng, db)
    if shape < 0.55:
        return _join_query(rng, db)
    return _single_table_query(rng, db, rng.choice(sorted(db.relations())))


# ---------------------------------------------------------------------------
# Shapes.
# ---------------------------------------------------------------------------

def _columns(db: Database, relation: str) -> list:
    return list(db.relation(relation).schema)


def _numeric_columns(db: Database, relation: str) -> list[str]:
    return [a.name for a in _columns(db, relation) if a.dtype.is_numeric]


def _string_columns(db: Database, relation: str) -> list[str]:
    return [a.name for a in _columns(db, relation) if a.dtype is DataType.STRING]


def _sample_value(rng: random.Random, db: Database, relation: str, column: str):
    rel = db.relation(relation)
    index = rel.schema.index(column)
    values = [row.values[index] for row in rel if row.values[index] is not None]
    if values and rng.random() < 0.8:
        return rng.choice(values)
    if rel.schema.dtype(column).is_numeric:
        return rng.randint(-5, 2005)
    return "zzz-" + str(rng.randint(0, 99))


def _literal(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _condition(rng: random.Random, db: Database, relation: str, column=None) -> str:
    attrs = _columns(db, relation)
    attr = column or rng.choice(attrs).name
    dtype = db.relation(relation).schema.dtype(attr)
    roll = rng.random()
    if roll < 0.35:
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        return f"{attr} {op} {_literal(_sample_value(rng, db, relation, attr))}"
    if roll < 0.5:
        values = ", ".join(
            _literal(_sample_value(rng, db, relation, attr))
            for _ in range(rng.randint(1, 3))
        )
        negated = "NOT " if rng.random() < 0.3 else ""
        return f"{attr} {negated}IN ({values})"
    if roll < 0.65 and dtype.is_numeric:
        low = _sample_value(rng, db, relation, attr)
        high = _sample_value(rng, db, relation, attr)
        if isinstance(low, (int, float)) and isinstance(high, (int, float)) and low > high:
            low, high = high, low
        return f"{attr} BETWEEN {_literal(low)} AND {_literal(high)}"
    if roll < 0.8 and dtype is DataType.STRING:
        needle = str(_sample_value(rng, db, relation, attr))[:3]
        needle = needle.replace("%", "").replace("_", "").replace("'", "")
        return f"{attr} LIKE '%{needle}%'"
    negated = "NOT " if rng.random() < 0.5 else ""
    return f"{attr} IS {negated}NULL"


def _where(rng: random.Random, db: Database, relation: str) -> str:
    count = rng.randint(0, 3)
    if count == 0:
        return ""
    parts = [_condition(rng, db, relation) for _ in range(count)]
    glue = [rng.choice([" AND ", " OR "]) for _ in range(count - 1)]
    clause = parts[0]
    for connective, part in zip(glue, parts[1:]):
        clause += connective + part
    if rng.random() < 0.2:
        clause = f"NOT ({clause})"
    return f" WHERE {clause}"


def _select_list(rng: random.Random, db: Database, relation: str) -> str:
    roll = rng.random()
    if roll < 0.2:
        return "*"
    attrs = [a.name for a in _columns(db, relation)]
    if roll < 0.5:
        chosen = rng.sample(attrs, rng.randint(1, min(3, len(attrs))))
        distinct = "DISTINCT " if rng.random() < 0.5 else ""
        return distinct + ", ".join(chosen)
    numeric = _numeric_columns(db, relation)
    if roll < 0.6 or not numeric:
        target = rng.choice(attrs + ["*"])
        return f"COUNT({target})"
    function = rng.choice(["SUM", "AVG", "MAX", "MIN"])
    column = rng.choice(numeric)
    alias = f" AS {function.lower()}_{column}" if rng.random() < 0.5 else ""
    return f"{function}({column}){alias}"


def _single_table_query(rng: random.Random, db: Database, relation: str) -> str:
    select = _select_list(rng, db, relation)
    where = _where(rng, db, relation)
    group = ""
    if "COUNT" in select and rng.random() < 0.4:
        key = rng.choice(_string_columns(db, relation) or ["id"])
        select = f"{key}, {select}"
        group = f" GROUP BY {key}"
    return f"SELECT {select} FROM {relation}{where}{group}"


def _join_query(rng: random.Random, db: Database) -> str:
    relations = sorted(db.relations())
    if len(relations) < 2:
        return _single_table_query(rng, db, relations[0])
    left, right = rng.sample(relations, 2)
    left_numeric = _numeric_columns(db, left)
    right_numeric = _numeric_columns(db, right)
    if not left_numeric or not right_numeric:
        return _single_table_query(rng, db, left)
    pair = (rng.choice(left_numeric), rng.choice(right_numeric))
    select = "COUNT(*)" if rng.random() < 0.6 else "*"
    if rng.random() < 0.5:
        where = _where(rng, db, left)
        return (
            f"SELECT {select} FROM {left} "
            f"JOIN {right} ON {left}.{pair[0]} = {right}.{pair[1]}{where}"
        )
    # comma form: the equi-join is recovered from WHERE
    extra = _condition(rng, db, left)
    return (
        f"SELECT {select} FROM {left}, {right} "
        f"WHERE {left}.{pair[0]} = {right}.{pair[1]} AND {extra}"
    )


def _union_query(rng: random.Random, db: Database) -> str:
    relation = rng.choice(sorted(db.relations()))
    attrs = [a.name for a in _columns(db, relation)]
    chosen = rng.sample(attrs, rng.randint(1, min(2, len(attrs))))
    cols = ", ".join(chosen)
    members = [
        f"SELECT {cols} FROM {relation}{_where(rng, db, relation)}"
        for _ in range(rng.randint(2, 3))
    ]
    return " UNION ".join(members)


def _not_in_query(rng: random.Random, db: Database) -> str:
    relation = rng.choice(sorted(db.relations()))
    attrs = [a.name for a in _columns(db, relation)]
    key = rng.choice(attrs)
    inner_where = _where(rng, db, relation) or " WHERE " + _condition(rng, db, relation)
    outer = _condition(rng, db, relation)
    select = rng.choice(["*", ", ".join(rng.sample(attrs, min(2, len(attrs))))])
    return (
        f"SELECT {select} FROM {relation} "
        f"WHERE {outer} AND {key} NOT IN (SELECT * FROM {relation}{inner_where})"
    )


def fuzz_round(seed: int, db: Database | None = None) -> str:
    """The deterministic query for one fuzz round (used by tests and CI)."""
    rng = random.Random(seed)
    return random_query_sql(rng, db or toy_database())


def stats_fuzz_round(seed: int, db: Database | None = None) -> str:
    """The deterministic query for one stats-fuzz round."""
    rng = random.Random(seed)
    return random_stats_query_sql(rng, db or stats_database())

"""The run-diff workload: explain disagreements between program-variant runs.

Runs of different implementations of one program are disjoint datasets that
should agree but don't -- exactly the Explain3D problem.  This subsystem is
the front door for that workload:

* :mod:`repro.runs.loader` -- NDJSON/CSV run files with declared (sidecar)
  or inferred schemas, JSON-pointer validation errors;
* :mod:`repro.runs.align` -- key-based alignment classifying every
  disagreement (missing rows, value mismatches with float tolerance,
  duplicate keys), with a brute-force reference oracle and a chaos-covered
  fallback (fault site ``runs.align``);
* :mod:`repro.runs.bridge` -- synthesizes the aligned runs into a disjoint
  :class:`Database` pair + canonical queries and feeds the unchanged
  provenance -> candidates -> MILP -> report pipeline;
* :mod:`repro.runs.spec` -- the ``{"runs": ...}`` wire spec the daemon and
  the fleet router accept on ``POST /explain``;
* ``python -m repro.runs`` -- the CLI: ``diff``, ``--explain``, ``--fuzz``,
  ``--self-test``.

The hermetic scenario generator lives in :mod:`repro.datasets.variants`.
"""

from repro.runs.align import (
    DUPLICATE_KEY,
    MISSING_IN_A,
    MISSING_IN_B,
    VALUE_MISMATCH,
    Disagreement,
    RunAlignment,
    align_runs,
    align_runs_reference,
)
from repro.runs.bridge import (
    AUTO,
    RunDiffProblem,
    build_run_problem,
    explain_run_diff,
)
from repro.runs.errors import RunError
from repro.runs.loader import (
    RunFile,
    RunSchema,
    load_run,
    load_sidecar,
    schema_from_spec,
    sidecar_path,
)
from repro.runs.spec import RunsRequest, compile_runs_payload

__all__ = [
    "AUTO",
    "DUPLICATE_KEY",
    "MISSING_IN_A",
    "MISSING_IN_B",
    "VALUE_MISMATCH",
    "Disagreement",
    "RunAlignment",
    "RunDiffProblem",
    "RunError",
    "RunFile",
    "RunSchema",
    "RunsRequest",
    "align_runs",
    "align_runs_reference",
    "build_run_problem",
    "compile_runs_payload",
    "explain_run_diff",
    "load_run",
    "load_sidecar",
    "schema_from_spec",
    "sidecar_path",
]

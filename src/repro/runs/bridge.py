"""The bridge from aligned runs to a full Explain3D problem.

Two runs of "the same program" are exactly the shape the paper's pipeline
consumes: two disjoint databases that should agree but don't.  The bridge
synthesizes everything the pipeline needs -- deterministically, so the same
run pair compiled here, by the daemon's ``{"runs": ...}`` spec handler or by
the fleet router yields byte-identical reports:

* each run's relation becomes a one-relation :class:`Database` named after
  the run (``_a``/``_b`` suffixes disambiguate same-named runs);
* canonical queries over the run outputs: ``SUM(compare)`` when a shared
  numeric non-key column exists (the first one in left-schema order, or an
  explicit choice), else ``COUNT(key[0])`` -- both built with the existing
  :mod:`repro.relational.query` constructors, so the provenance, candidate,
  MILP and reporting stages run unchanged;
* identity attribute matches over all shared columns (the key columns pair
  the tuples; the value columns let Stage 1 score them).

:meth:`RunDiffProblem.to_payload` emits the equivalent declarative service
request and :meth:`RunDiffProblem.registrations` the ``POST /databases``
payloads (records plus explicit per-column dtypes, so a worker that rebuilds
the relations from JSON lands on the same typed schema and fingerprint).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.explain3d import Explain3D, Explain3DConfig
from repro.matching.attribute_match import AttributeMatching, matching
from repro.relational.executor import Database
from repro.relational.query import Query, Scan, count_query, sum_query
from repro.relational.relation import Relation
from repro.runs.errors import RunError
from repro.runs.loader import RunFile

#: Sentinel: pick the compare column automatically (first shared numeric
#: non-key column in left-schema order); pass ``None`` to force COUNT.
AUTO = "auto"


@dataclass
class RunDiffProblem:
    """A fully-synthesized Explain3D problem over one run pair."""

    database_left: Database
    database_right: Database
    query_left: Query
    query_right: Query
    attribute_matches: AttributeMatching
    key: tuple[str, ...]
    compare: str | None          # the aggregated column (None -> COUNT)
    shared_columns: tuple[str, ...]

    @property
    def relation_left(self) -> str:
        return next(iter(self.database_left.relations()))

    @property
    def relation_right(self) -> str:
        return next(iter(self.database_right.relations()))

    def explain(self, config: Explain3DConfig | None = None):
        """The direct path: run the unchanged three-stage pipeline."""
        return Explain3D(config or Explain3DConfig()).explain(
            self.query_left,
            self.database_left,
            self.query_right,
            self.database_right,
            attribute_matches=self.attribute_matches,
        )

    def query_specs(self) -> tuple[dict, dict]:
        """The declarative query specs compiling to ``query_left/right``."""
        if self.compare is not None:
            left = {
                "name": self.query_left.name,
                "kind": "sum",
                "relation": self.relation_left,
                "attribute": self.compare,
            }
            right = dict(left, name=self.query_right.name, relation=self.relation_right)
        else:
            left = {
                "name": self.query_left.name,
                "kind": "count",
                "relation": self.relation_left,
                "attribute": self.key[0],
            }
            right = dict(left, name=self.query_right.name, relation=self.relation_right)
        return left, right

    def registrations(self) -> list[dict]:
        """``POST /databases`` payloads carrying records *and* dtypes.

        The explicit per-column dtypes make the registration loss-free: a
        worker rebuilding the relation from JSON records coerces into the
        same typed schema the bridge holds, so fingerprints -- and therefore
        placement, caching and reports -- agree across every surface.
        """
        payloads = []
        for database in (self.database_left, self.database_right):
            relations = {}
            dtypes = {}
            for name, relation in database.relations().items():
                relations[name] = relation.as_dicts()
                dtypes[name] = {
                    attribute.name: attribute.dtype.value
                    for attribute in relation.schema
                }
            payloads.append(
                {"name": database.name, "relations": relations, "dtypes": dtypes}
            )
        return payloads

    def to_payload(self) -> dict:
        """The declarative ``POST /explain`` payload equivalent to this problem."""
        left_spec, right_spec = self.query_specs()
        return {
            "database_left": self.database_left.name,
            "query_left": left_spec,
            "database_right": self.database_right.name,
            "query_right": right_spec,
            "attribute_matches": [
                [column, column] for column in self.shared_columns
            ],
        }


def _as_relation(run) -> Relation:
    if isinstance(run, RunFile):
        return run.relation
    if isinstance(run, Relation):
        return run
    raise RunError(f"expected a Relation or RunFile, got {type(run).__name__}")


def _pick_compare(left: Relation, right: Relation, key: tuple[str, ...], compare):
    shared = tuple(
        name for name in left.schema.names if name in right.schema
    )
    if not shared:
        raise RunError("the two runs share no columns; nothing to align or compare")
    candidates = [name for name in shared if name not in key]
    if compare is None:
        return None, shared
    if compare is AUTO or compare == AUTO:
        numeric = [
            name
            for name in candidates
            if left.schema.dtype(name).is_numeric and right.schema.dtype(name).is_numeric
        ]

        def column_sum(relation: Relation, name: str) -> float:
            return sum(value for value in relation.column(name) if value is not None)

        def sums_differ(a: float, b: float) -> bool:
            # NaN sums (a non-finite value anywhere in the column) compare
            # unequal to themselves; treating that as a disagreement would
            # fabricate a divergence on a column both runs agree on.
            if a != a or b != b:
                return not (a != a and b != b)
            return a != b

        # Prefer the first numeric column on which the runs actually
        # disagree in aggregate -- that is the disagreement worth explaining.
        # Deterministic: left-schema order, data-only inputs.
        for name in numeric:
            if sums_differ(column_sum(left, name), column_sum(right, name)):
                return name, shared
        if numeric:
            return numeric[0], shared
        return None, shared  # no shared numeric column: fall back to COUNT
    compare = str(compare)
    if compare not in candidates:
        raise RunError(
            f"compare column {compare!r} is not a shared non-key column "
            f"(candidates: {candidates})"
        )
    if not (left.schema.dtype(compare).is_numeric and right.schema.dtype(compare).is_numeric):
        raise RunError(f"compare column {compare!r} is not numeric on both sides")
    return compare, shared


def build_run_problem(
    left,
    right,
    *,
    key=None,
    compare=AUTO,
) -> RunDiffProblem:
    """Synthesize the Explain3D problem for one run pair.

    ``left``/``right`` are :class:`Relation` or :class:`RunFile` objects;
    ``key`` falls back to the runs' declared (sidecar) keys, which must agree
    when both declare one.
    """
    left_file = left if isinstance(left, RunFile) else None
    right_file = right if isinstance(right, RunFile) else None
    left_relation = _as_relation(left)
    right_relation = _as_relation(right)

    if key is None:
        declared_left = left_file.key if left_file is not None else ()
        declared_right = right_file.key if right_file is not None else ()
        if declared_left and declared_right and declared_left != declared_right:
            raise RunError(
                f"the runs declare different keys: {list(declared_left)} vs "
                f"{list(declared_right)}; pass an explicit key"
            )
        key = declared_left or declared_right
    if isinstance(key, str):
        key = (key,)
    key = tuple(str(column) for column in key or ())
    if not key:
        raise RunError("a run pair needs a key (declared in a sidecar or passed explicitly)")
    for column in key:
        for side, relation in (("left", left_relation), ("right", right_relation)):
            if column not in relation.schema:
                raise RunError(
                    f"key column {column!r} is not in the {side} run "
                    f"(columns: {list(relation.schema.names)})"
                )

    compare_column, shared = _pick_compare(left_relation, right_relation, key, compare)

    left_name = left_relation.name or "left"
    right_name = right_relation.name or "right"
    if left_name == right_name:
        left_name, right_name = f"{left_name}_a", f"{right_name}_b"

    # Databases are built from the records so relation names (which seed the
    # provenance lineage ids) match the database naming, whatever the caller
    # originally named the relations.
    database_left = Database(left_name)
    database_left.add_records(left_name, left_relation.as_dicts(), left_relation.schema)
    database_right = Database(right_name)
    database_right.add_records(right_name, right_relation.as_dicts(), right_relation.schema)

    if compare_column is not None:
        query_left = sum_query(
            "QA", Scan(left_name), compare_column,
            description=f"total {compare_column} of run {left_name}",
        )
        query_right = sum_query(
            "QB", Scan(right_name), compare_column,
            description=f"total {compare_column} of run {right_name}",
        )
    else:
        query_left = count_query(
            "QA", Scan(left_name), attribute=key[0],
            description=f"row count of run {left_name}",
        )
        query_right = count_query(
            "QB", Scan(right_name), attribute=key[0],
            description=f"row count of run {right_name}",
        )

    return RunDiffProblem(
        database_left=database_left,
        database_right=database_right,
        query_left=query_left,
        query_right=query_right,
        attribute_matches=matching(*[(column, column) for column in shared]),
        key=key,
        compare=compare_column,
        shared_columns=shared,
    )


def explain_run_diff(left, right, *, key=None, compare=AUTO, config=None):
    """One-call convenience: build the problem and run the pipeline."""
    return build_run_problem(left, right, key=key, compare=compare).explain(config)

"""Aligner fuzzing: random run pairs, fast aligner vs brute-force oracle.

Each round generates a seeded pair of runs engineered to hit every
classification: shared rows, perturbed values (including sub-tolerance float
jitter), dropped rows on either side, NULLs, empty-vs-null strings and
duplicated keys.  The production (hash-indexed) aligner must produce the
*identical* canonical alignment as :func:`repro.runs.align.align_runs_reference`,
the independent O(n*m) scan implementation.
"""

from __future__ import annotations

import random

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema
from repro.runs.align import align_runs, align_runs_reference

FUZZ_SCHEMA = Schema(
    [
        Attribute("id", DataType.INTEGER),
        Attribute("name", DataType.STRING),
        Attribute("score", DataType.FLOAT),
        Attribute("flag", DataType.BOOLEAN),
    ]
)


def random_run_pair(rng: random.Random) -> tuple[Relation, Relation, float]:
    """One seeded (left, right, tolerance) triple covering every divergence kind."""
    size = rng.randint(1, 40)
    tolerance = rng.choice([0.0, 0.0, 1e-6, 0.01])

    def base_record(i: int) -> dict:
        return {
            "id": i,
            "name": rng.choice([f"row {i}", "", None]),
            "score": rng.choice(
                [
                    round(rng.uniform(0, 100), 3),
                    float(i),
                    None,
                    # Non-finite scores: two runs agreeing on NaN (or the same
                    # infinity) must *not* classify as value_mismatch.
                    float("nan"),
                    float("inf"),
                    float("-inf"),
                ]
            ),
            "flag": rng.choice([True, False, None]),
        }

    base = [base_record(i) for i in range(size)]
    left_records = [dict(record) for record in base if rng.random() > 0.1]
    right_records = []
    for record in base:
        if rng.random() <= 0.1:
            continue  # missing_in_a material
        mutated = dict(record)
        roll = rng.random()
        if roll < 0.2:
            mutated["score"] = (
                None if mutated["score"] is None
                else mutated["score"] + rng.choice([0.5, -2.0, tolerance / 2])
            )
        elif roll < 0.26:
            # Swap in (or flip between) non-finite scores so the oracle
            # equivalence check covers NaN-vs-finite, inf-vs--inf, NaN-vs-NaN.
            mutated["score"] = rng.choice(
                [float("nan"), float("inf"), float("-inf")]
            )
        elif roll < 0.34:
            mutated["name"] = "mutated"
        elif roll < 0.39:
            mutated["flag"] = None if mutated["flag"] else True
        right_records.append(mutated)
    # Seed duplicate keys on either side.
    if left_records and rng.random() < 0.3:
        left_records.append(dict(rng.choice(left_records)))
    if right_records and rng.random() < 0.3:
        right_records.append(dict(rng.choice(right_records)))
    # Rows only one side has ever seen.
    if rng.random() < 0.5:
        right_records.append(base_record(size + 1))
    if not left_records:
        left_records = [base_record(0)]
    if not right_records:
        right_records = [base_record(1)]
    rng.shuffle(right_records)

    left = Relation.from_records(left_records, FUZZ_SCHEMA, name="fuzz_left")
    right = Relation.from_records(right_records, FUZZ_SCHEMA, name="fuzz_right")
    return left, right, tolerance


def fuzz_aligner(rounds: int, seed: int, *, verbose: bool = False) -> int:
    """Run ``rounds`` random alignments; raises on the first oracle mismatch.

    Returns the total number of disagreements classified across all rounds
    (a sanity signal that the generator actually exercises the classifier).
    """
    rng = random.Random(seed)
    total = 0
    for round_number in range(rounds):
        left, right, tolerance = random_run_pair(rng)
        fast = align_runs(left, right, ("id",), float_tolerance=tolerance)
        reference = align_runs_reference(left, right, ("id",), float_tolerance=tolerance)
        if fast.canonical() != reference.canonical():
            raise AssertionError(
                f"round {round_number}: aligner diverged from the brute-force "
                f"reference\nfast: {fast.canonical()}\nref:  {reference.canonical()}"
            )
        total += len(fast.disagreements)
        if verbose and round_number % 50 == 0:
            print(f"  round {round_number}: {len(fast.disagreements)} disagreement(s)")
    return total

"""Key-based run alignment: pair records across two runs, classify divergence.

Two runs of "the same program" should agree row-for-row.  The aligner pairs
rows by a declared key and classifies every divergence:

* ``duplicate_key``   -- a key value occurring more than once on one side
  (alignment for that key is ambiguous; such keys are excluded from pairing);
* ``missing_in_a``    -- the key exists only in the right run;
* ``missing_in_b``    -- the key exists only in the left run;
* ``value_mismatch``  -- both runs carry the key but compared columns differ
  (numeric columns compare within a configurable absolute ``float_tolerance``).

Two implementations produce *identical* :class:`RunAlignment` objects:

* :func:`align_runs` -- the production path, one dict-indexed pass per side;
* :func:`align_runs_reference` -- a brute-force O(n*m) scan used as the fuzz
  oracle (``python -m repro.runs --fuzz``) and as the degradation fallback
  when the ``runs.align`` fault site fires: an injected fault downgrades to
  the reference aligner and records the rung in ``degraded`` -- never a
  silently different answer.

Deterministic ordering: duplicates first (left side then right, in first-
occurrence order), then left-row-order mismatches and missing-in-B, then
right-row-order missing-in-A.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.relational.relation import Relation
from repro.reliability.faults import FAULTS, InjectedFault
from repro.runs.errors import RunError

MISSING_IN_A = "missing_in_a"
MISSING_IN_B = "missing_in_b"
VALUE_MISMATCH = "value_mismatch"
DUPLICATE_KEY = "duplicate_key"


@dataclass(frozen=True)
class Disagreement:
    """One classified divergence between aligned runs."""

    kind: str
    key: tuple
    left: dict | None = None   # the left-run record (None when missing in A)
    right: dict | None = None  # the right-run record (None when missing in B)
    columns: tuple[str, ...] = ()  # mismatching columns (value_mismatch only)
    count: int = 0             # occurrences of the key (duplicate_key only)
    side: str = ""             # which run duplicates the key (duplicate_key only)

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "key": list(self.key)}
        if self.left is not None:
            payload["left"] = self.left
        if self.right is not None:
            payload["right"] = self.right
        if self.columns:
            payload["columns"] = list(self.columns)
        if self.count:
            payload["count"] = self.count
        if self.side:
            payload["side"] = self.side
        return payload


@dataclass
class RunAlignment:
    """The disagreement report of one aligned run pair."""

    left_name: str
    right_name: str
    key: tuple[str, ...]
    compared: tuple[str, ...]
    float_tolerance: float
    left_rows: int
    right_rows: int
    matched: int      # keys present (uniquely) on both sides
    agreeing: int     # matched keys whose compared columns all agree
    disagreements: list[Disagreement]
    degraded: list[dict] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for disagreement in self.disagreements:
            out[disagreement.kind] = out.get(disagreement.kind, 0) + 1
        return out

    def agree(self) -> bool:
        return not self.disagreements

    def canonical(self) -> dict:
        """The semantic content -- what both aligner implementations must equal.

        Excludes ``degraded`` (which rung computed the answer is metadata,
        not part of the answer).
        """
        return {
            "left": self.left_name,
            "right": self.right_name,
            "key": list(self.key),
            "compared": list(self.compared),
            "float_tolerance": self.float_tolerance,
            "left_rows": self.left_rows,
            "right_rows": self.right_rows,
            "matched": self.matched,
            "agreeing": self.agreeing,
            "counts": self.counts(),
            "disagreements": [d.to_dict() for d in self.disagreements],
        }

    def to_dict(self) -> dict:
        payload = self.canonical()
        if self.degraded:
            payload["degraded"] = list(self.degraded)
        return payload

    def fingerprint(self) -> str:
        return hashlib.sha256(
            json.dumps(self.canonical(), sort_keys=True).encode()
        ).hexdigest()

    def describe(self, limit: int = 10) -> str:
        """A terse human-readable summary (the CLI's default output)."""
        lines = [
            f"{self.left_name} ({self.left_rows} rows) vs "
            f"{self.right_name} ({self.right_rows} rows) on key "
            f"{'+'.join(self.key)}: {self.matched} matched, "
            f"{self.agreeing} agreeing, {len(self.disagreements)} disagreement(s)"
        ]
        counts = self.counts()
        if counts:
            lines.append(
                "  " + ", ".join(f"{kind}: {n}" for kind, n in sorted(counts.items()))
            )
        for disagreement in self.disagreements[:limit]:
            key = ", ".join(str(part) for part in disagreement.key)
            if disagreement.kind == VALUE_MISMATCH:
                details = []
                for column in disagreement.columns:
                    left = (disagreement.left or {}).get(column)
                    right = (disagreement.right or {}).get(column)
                    details.append(f"{column}: {left!r} != {right!r}")
                lines.append(f"  [{key}] value_mismatch ({'; '.join(details)})")
            elif disagreement.kind == DUPLICATE_KEY:
                lines.append(
                    f"  [{key}] duplicate_key x{disagreement.count} "
                    f"in {disagreement.side}"
                )
            else:
                lines.append(f"  [{key}] {disagreement.kind}")
        hidden = len(self.disagreements) - limit
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)


def _values_equal(left, right, tolerance: float) -> bool:
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, bool) or isinstance(right, bool):
        return left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        # Non-finite values must be settled before the tolerance subtraction:
        # NaN - NaN is NaN (making |diff| <= tol false, a spurious mismatch)
        # and inf - inf is NaN too, so two runs agreeing on inf would be
        # misclassified.  NaN agrees with NaN; each infinity only with itself.
        left_nan = left != left
        right_nan = right != right
        if left_nan or right_nan:
            return left_nan and right_nan
        if left == right:
            return True
        if math.isinf(left) or math.isinf(right):
            return False
        return abs(left - right) <= tolerance
    return left == right


def _validate(
    left: Relation, right: Relation, key: tuple[str, ...], compare
) -> tuple[str, ...]:
    if not key:
        raise RunError("alignment needs at least one key column")
    for column in key:
        for side, relation in (("left", left), ("right", right)):
            if column not in relation.schema:
                raise RunError(
                    f"key column {column!r} is not in the {side} run "
                    f"(columns: {list(relation.schema.names)})"
                )
    shared = [
        name
        for name in left.schema.names
        if name in right.schema and name not in key
    ]
    if compare is None:
        return tuple(shared)
    compared = tuple(str(column) for column in compare)
    for column in compared:
        if column in key:
            raise RunError(f"compared column {column!r} is part of the key")
        for side, relation in (("left", left), ("right", right)):
            if column not in relation.schema:
                raise RunError(
                    f"compared column {column!r} is not in the {side} run "
                    f"(columns: {list(relation.schema.names)})"
                )
    return compared


def _index_hashed(relation: Relation, key: tuple[str, ...]) -> dict[tuple, list[int]]:
    """The production index: one dict pass, key tuple -> row positions."""
    positions = [relation.schema.index(column) for column in key]
    index: dict[tuple, list[int]] = {}
    for row_number, row in enumerate(relation):
        key_value = tuple(row.values[position] for position in positions)
        index.setdefault(key_value, []).append(row_number)
    return index


def _index_scan(relation: Relation, key: tuple[str, ...]) -> dict[tuple, list[int]]:
    """The brute-force index: quadratic equality scans, no hashing.

    Deliberately naive -- an independent implementation the fuzz harness can
    trust.  Produces the same first-occurrence ordering as the hashed index.
    """
    positions = [relation.schema.index(column) for column in key]
    keys: list[tuple] = []
    groups: list[list[int]] = []
    for row_number, row in enumerate(relation):
        key_value = tuple(row.values[position] for position in positions)
        found = None
        for slot, existing in enumerate(keys):
            if existing == key_value:
                found = slot
                break
        if found is None:
            keys.append(key_value)
            groups.append([row_number])
        else:
            groups[found].append(row_number)
    return dict(zip(keys, groups))


def _align(
    left: Relation,
    right: Relation,
    key: tuple[str, ...],
    compared: tuple[str, ...],
    tolerance: float,
    indexer,
) -> RunAlignment:
    left_index = indexer(left, key)
    right_index = indexer(right, key)

    disagreements: list[Disagreement] = []
    ambiguous: set[tuple] = set()
    for side_name, relation, index in (
        ("left", left, left_index),
        ("right", right, right_index),
    ):
        for key_value, rows in index.items():
            if len(rows) > 1:
                ambiguous.add(key_value)
                disagreements.append(
                    Disagreement(
                        DUPLICATE_KEY,
                        key_value,
                        left=relation[rows[0]].as_dict(relation.schema)
                        if side_name == "left"
                        else None,
                        right=relation[rows[0]].as_dict(relation.schema)
                        if side_name == "right"
                        else None,
                        count=len(rows),
                        side=side_name,
                    )
                )

    matched = 0
    agreeing = 0
    for key_value, rows in left_index.items():
        if key_value in ambiguous:
            continue
        left_record = left[rows[0]].as_dict(left.schema)
        right_rows = right_index.get(key_value)
        if right_rows is None:
            disagreements.append(
                Disagreement(MISSING_IN_B, key_value, left=left_record)
            )
            continue
        matched += 1
        right_record = right[right_rows[0]].as_dict(right.schema)
        mismatching = tuple(
            column
            for column in compared
            if not _values_equal(
                left_record.get(column), right_record.get(column), tolerance
            )
        )
        if mismatching:
            disagreements.append(
                Disagreement(
                    VALUE_MISMATCH,
                    key_value,
                    left=left_record,
                    right=right_record,
                    columns=mismatching,
                )
            )
        else:
            agreeing += 1
    for key_value, rows in right_index.items():
        if key_value in ambiguous or key_value in left_index:
            continue
        disagreements.append(
            Disagreement(
                MISSING_IN_A, key_value, right=right[rows[0]].as_dict(right.schema)
            )
        )

    return RunAlignment(
        left_name=left.name or "left",
        right_name=right.name or "right",
        key=key,
        compared=compared,
        float_tolerance=tolerance,
        left_rows=len(left),
        right_rows=len(right),
        matched=matched,
        agreeing=agreeing,
        disagreements=disagreements,
    )


def _normalize_key(key) -> tuple[str, ...]:
    if isinstance(key, str):
        return (key,)
    return tuple(str(column) for column in key or ())


def align_runs_reference(
    left: Relation,
    right: Relation,
    key,
    *,
    float_tolerance: float = 0.0,
    compare=None,
) -> RunAlignment:
    """The brute-force oracle: same answer as :func:`align_runs`, no hashing."""
    key = _normalize_key(key)
    compared = _validate(left, right, key, compare)
    return _align(left, right, key, compared, float_tolerance, _index_scan)


def align_runs(
    left: Relation,
    right: Relation,
    key,
    *,
    float_tolerance: float = 0.0,
    compare=None,
) -> RunAlignment:
    """Align two runs by key and classify every disagreement.

    The ``runs.align`` fault site covers the production (hash-indexed) pass;
    an injected fault falls back to the brute-force reference aligner, which
    produces the identical alignment (asserted by the chaos suite) -- the
    degradation is recorded in ``RunAlignment.degraded``, never silent.
    """
    key = _normalize_key(key)
    compared = _validate(left, right, key, compare)
    try:
        FAULTS.check("runs.align")
    except InjectedFault:
        result = _align(left, right, key, compared, float_tolerance, _index_scan)
        result.degraded.append(
            {"site": "runs.align", "fallback": "reference-aligner"}
        )
        return result
    return _align(left, right, key, compared, float_tolerance, _index_hashed)

"""The ``{"runs": ...}`` service spec: run pairs over the wire.

Both front doors -- the single-process daemon (``POST /explain``) and the
fleet router -- accept an explain payload that, instead of naming registered
databases, carries a run pair::

    {"runs": {
        "left":  {"name": "single_thread", "records": [{"id": 0, ...}, ...]},
        "right": {"path": "runs/async_event_loop.ndjson"},
        "key": "id",            // or ["id", ...]; falls back to sidecar keys
        "compare": "tax"        // optional; omit = auto, null = COUNT
     },
     "config": {...}, "deadline_seconds": 5}   // other keys pass through

Each side is either inline ``records`` (with a ``name``) or a ``path`` to an
NDJSON/CSV run file on the server's filesystem (sidecar schemas apply).
Compilation registers the two runs as single-relation databases and rewrites
the payload into the ordinary declarative explain request -- one code path
(:mod:`repro.runs.bridge`) serves the daemon, the router and the direct API,
which is what makes their reports byte-identical.

Malformed specs raise :class:`~repro.runs.errors.RunError` with a
JSON-pointer ``path`` (``/runs/left/records``), which both front doors return
as a typed 400 envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runs.bridge import AUTO, RunDiffProblem, build_run_problem
from repro.runs.errors import RunError
from repro.runs.loader import RunFile, load_run, records_to_relation

#: Keys of the explain payload that pass through unchanged around a runs spec.
_PASSTHROUGH_KEYS = (
    "config",
    "deadline_seconds",
    "on_deadline",
    "tuple_mapping",
    "labeled_pairs",
)

_SIDE_KEYS = {"name", "records", "path", "key"}


@dataclass
class RunsRequest:
    """A compiled runs payload: the problem plus its wire-format pieces."""

    problem: RunDiffProblem
    registrations: list[dict]   # POST /databases payloads (records + dtypes)
    explain_payload: dict       # the rewritten plain /explain payload


def _load_side(side, which: str) -> RunFile:
    path = f"/runs/{which}"
    if not isinstance(side, dict):
        raise RunError(
            f"runs spec {which!r} must be an object with 'records' or 'path', "
            f"got {type(side).__name__}",
            path,
        )
    unknown = sorted(set(side) - _SIDE_KEYS)
    if unknown:
        raise RunError(
            f"unknown key {unknown[0]!r} in runs spec side "
            f"(allowed: {sorted(_SIDE_KEYS)})",
            f"{path}/{unknown[0]}",
        )
    has_records = "records" in side
    has_path = "path" in side
    if has_records == has_path:
        raise RunError(
            f"runs spec {which!r} needs exactly one of 'records' or 'path'", path
        )
    key = side.get("key")
    if key is not None and not isinstance(key, (str, list)):
        raise RunError("'key' must be a column name or a list of them", f"{path}/key")
    if has_path:
        try:
            run = load_run(side["path"], name=side.get("name"), key=key)
        except RunError as exc:
            raise RunError(str(exc), f"{path}{exc.path or '/path'}") from None
        return run
    records = side["records"]
    if not isinstance(records, list) or not records:
        raise RunError(
            f"runs spec {which!r} needs a non-empty 'records' list",
            f"{path}/records",
        )
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise RunError(
                f"each record must be an object, got {type(record).__name__}",
                f"{path}/records/{index}",
            )
    name = side.get("name")
    if not name:
        raise RunError(
            f"inline 'records' need a 'name' for run {which!r}", f"{path}/name"
        )
    columns: list[str] = []
    seen: set[str] = set()
    for record in records:
        for column in record:
            if column not in seen:
                seen.add(column)
                columns.append(str(column))
    try:
        relation = records_to_relation(records, columns, name=str(name), path=path)
    except RunError as exc:
        raise RunError(str(exc), exc.path) from None
    key_columns = (key,) if isinstance(key, str) else tuple(str(k) for k in key or ())
    for column in key_columns:
        if column not in relation.schema:
            raise RunError(
                f"key column {column!r} is not in run {relation.name!r} "
                f"(columns: {list(relation.schema.names)})",
                f"{path}/key",
            )
    return RunFile(relation, key_columns)


def compile_runs_payload(payload: dict) -> RunsRequest:
    """Compile a ``{"runs": ...}`` explain payload; see the module docstring."""
    spec = payload.get("runs")
    if not isinstance(spec, dict):
        raise RunError(
            f"'runs' must be an object, got {type(spec).__name__}", "/runs"
        )
    unknown = sorted(set(spec) - {"left", "right", "key", "compare"})
    if unknown:
        raise RunError(
            f"unknown key {unknown[0]!r} in runs spec "
            f"(allowed: ['left', 'right', 'key', 'compare'])",
            f"/runs/{unknown[0]}",
        )
    for which in ("left", "right"):
        if which not in spec:
            raise RunError(f"runs spec needs {which!r}", f"/runs/{which}")
    stray = sorted(
        set(payload)
        - {"runs", *_PASSTHROUGH_KEYS}
    )
    if stray:
        raise RunError(
            f"a 'runs' payload cannot also carry {stray[0]!r}; the run pair "
            "defines the databases and queries",
            f"/{stray[0]}",
        )

    left = _load_side(spec["left"], "left")
    right = _load_side(spec["right"], "right")

    key = spec.get("key")
    if key is not None and not isinstance(key, (str, list)):
        raise RunError(
            "'key' must be a column name or a list of them", "/runs/key"
        )
    compare = spec.get("compare", AUTO) if "compare" in spec else AUTO

    try:
        problem = build_run_problem(left, right, key=key, compare=compare)
    except RunError as exc:
        raise RunError(str(exc), exc.path or "/runs") from None

    explain_payload = problem.to_payload()
    for passthrough in _PASSTHROUGH_KEYS:
        if passthrough in payload:
            explain_payload[passthrough] = payload[passthrough]
    return RunsRequest(
        problem=problem,
        registrations=problem.registrations(),
        explain_payload=explain_payload,
    )

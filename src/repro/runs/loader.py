"""Run-file loading: NDJSON/CSV program outputs with declared or inferred types.

A *run file* is the output of one program variant: NDJSON (``.ndjson`` /
``.jsonl``, one JSON object per line) or CSV with a header row.  Types come
from one of two places:

* a **declared schema** -- a JSON sidecar next to the run file
  (``out.ndjson`` -> ``out.schema.json``) or passed explicitly::

      {"columns": [{"name": "id", "type": "integer"},
                   {"name": "tax", "type": "float"}],
       "key": ["id"]}

* **inference** -- per column over all values: NDJSON values keep their JSON
  types (mixed int/float promotes to float, ``""`` stays distinct from
  ``null``), CSV cells are parsed textually.

Every validation failure raises :class:`~repro.runs.errors.RunError` with a
JSON-pointer path into the rows (``/rows/3/tax``) or the schema spec
(``/columns/1/type``), in the house style of the service layer's
``SpecError``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.relational.csvio import read_ndjson_records
from repro.relational.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema
from repro.runs.errors import RunError

#: Accepted spellings of column types in a declared run schema.
_TYPE_ALIASES = {
    "string": DataType.STRING,
    "str": DataType.STRING,
    "text": DataType.STRING,
    "integer": DataType.INTEGER,
    "int": DataType.INTEGER,
    "float": DataType.FLOAT,
    "double": DataType.FLOAT,
    "number": DataType.FLOAT,
    "boolean": DataType.BOOLEAN,
    "bool": DataType.BOOLEAN,
}

_NDJSON_SUFFIXES = {".ndjson", ".jsonl"}
_CSV_SUFFIXES = {".csv"}


@dataclass(frozen=True)
class RunSchema:
    """A declared run schema: typed columns plus an optional alignment key."""

    schema: Schema
    key: tuple[str, ...] = ()


@dataclass
class RunFile:
    """One loaded run: the relation plus the key declared for alignment."""

    relation: Relation
    key: tuple[str, ...] = ()
    source: Path | None = None
    declared: bool = field(default=False)  # True when a schema was declared

    @property
    def name(self) -> str:
        return self.relation.name


def schema_from_spec(spec: dict, path: str = "") -> RunSchema:
    """Compile a declared run schema spec (sidecar or inline) into objects."""
    if not isinstance(spec, dict):
        raise RunError(
            f"run schema must be an object, got {type(spec).__name__}", path
        )
    columns = spec.get("columns")
    if not isinstance(columns, list) or not columns:
        raise RunError(
            "run schema needs a non-empty 'columns' list", f"{path}/columns"
        )
    attributes: list[Attribute] = []
    for index, column in enumerate(columns):
        here = f"{path}/columns/{index}"
        if not isinstance(column, dict) or "name" not in column:
            raise RunError(f"each column needs a 'name': {column!r}", here)
        type_name = str(column.get("type", "string")).lower()
        if type_name not in _TYPE_ALIASES:
            raise RunError(
                f"unknown column type {type_name!r} "
                f"(one of {sorted(set(_TYPE_ALIASES))})",
                f"{here}/type",
            )
        try:
            attributes.append(Attribute(str(column["name"]), _TYPE_ALIASES[type_name]))
        except SchemaError as exc:
            raise RunError(str(exc), f"{here}/name") from None
    try:
        schema = Schema(attributes)
    except SchemaError as exc:
        raise RunError(str(exc), f"{path}/columns") from None
    key_spec = spec.get("key", [])
    if isinstance(key_spec, str):
        key_spec = [key_spec]
    if not isinstance(key_spec, list):
        raise RunError("'key' must be a column name or a list of them", f"{path}/key")
    key = tuple(str(column) for column in key_spec)
    for position, column in enumerate(key):
        if column not in schema:
            raise RunError(
                f"key column {column!r} is not in the schema "
                f"(columns: {list(schema.names)})",
                f"{path}/key/{position}",
            )
    return RunSchema(schema, key)


def sidecar_path(path: str | Path) -> Path:
    """The declared-schema sidecar of a run file: ``out.ndjson`` -> ``out.schema.json``."""
    path = Path(path)
    return path.with_name(f"{path.stem}.schema.json")


def load_sidecar(path: str | Path) -> RunSchema | None:
    """Load the sidecar schema next to a run file, if one exists."""
    sidecar = sidecar_path(path)
    if not sidecar.exists():
        return None
    try:
        spec = json.loads(sidecar.read_text())
    except json.JSONDecodeError as exc:
        raise RunError(f"{sidecar}: invalid JSON: {exc}") from None
    return schema_from_spec(spec)


def _read_csv_records(path: Path) -> tuple[list[dict], list[str]]:
    """CSV rows as record dicts; empty cells load as NULL (untyped wire)."""
    with path.open(newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise RunError(f"CSV run file {path} is empty")
    header, *data = rows
    columns = [str(name) for name in header]
    records = [
        {name: (cell if cell != "" else None) for name, cell in zip(columns, row)}
        for row in data
    ]
    return records, columns


def records_to_relation(
    records: list[dict],
    columns: list[str],
    *,
    name: str,
    schema: Schema | None = None,
    path: str = "",
) -> Relation:
    """Validate records against a schema (declared or inferred) row by row.

    Unlike :meth:`Relation.from_records`, a coercion failure names the exact
    row and column as a JSON pointer (``<path>/rows/3/tax``), and a record
    carrying a column the schema does not know is an error rather than
    silently dropped.
    """
    if schema is None:
        schema = Schema(
            [
                Attribute(column, DataType.infer_many(r.get(column) for r in records))
                for column in columns
            ]
        )
    known = set(schema.names)
    relation = Relation(schema, name=name)
    for index, record in enumerate(records):
        unknown = sorted(set(record) - known)
        if unknown:
            raise RunError(
                f"row has column {unknown[0]!r} not in the declared schema "
                f"(columns: {list(schema.names)})",
                f"{path}/rows/{index}/{unknown[0]}",
            )
        values = []
        for attribute in schema:
            raw = record.get(attribute.name)
            try:
                values.append(attribute.dtype.coerce(raw))
            except SchemaError as exc:
                raise RunError(str(exc), f"{path}/rows/{index}/{attribute.name}") from None
        relation.append(values)
    return relation


def load_run(
    path: str | Path,
    *,
    name: str | None = None,
    schema: RunSchema | Schema | None = None,
    key: tuple[str, ...] | list[str] | str | None = None,
) -> RunFile:
    """Load one run file (NDJSON or CSV by extension) into a :class:`RunFile`.

    Schema resolution order: an explicit ``schema`` argument, then the
    ``*.schema.json`` sidecar, then per-column inference.  ``key`` overrides
    the sidecar's declared key.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in _NDJSON_SUFFIXES | _CSV_SUFFIXES:
        raise RunError(
            f"unsupported run file extension {suffix!r} for {path} "
            f"(expected one of {sorted(_NDJSON_SUFFIXES | _CSV_SUFFIXES)})"
        )
    if not path.exists():
        raise RunError(f"run file {path} does not exist")

    declared: RunSchema | None
    if schema is None:
        declared = load_sidecar(path)
    elif isinstance(schema, Schema):
        declared = RunSchema(schema)
    else:
        declared = schema

    try:
        if suffix in _NDJSON_SUFFIXES:
            records, columns = read_ndjson_records(path)
        else:
            records, columns = _read_csv_records(path)
    except ValueError as exc:
        raise RunError(str(exc)) from None

    if declared is not None:
        relation_schema = declared.schema
    elif suffix in _CSV_SUFFIXES:
        # CSV cells are text; reuse the textual column inference of csvio by
        # round-tripping through load-style parsing: infer per column from
        # the string cells, then coerce.
        from repro.relational.csvio import _infer_dtype

        relation_schema = Schema(
            [
                Attribute(column, _infer_dtype([r.get(column) for r in records]))
                for column in columns
            ]
        )
    else:
        relation_schema = None  # NDJSON: infer from typed values

    relation = records_to_relation(
        records,
        columns,
        name=name or path.stem,
        schema=relation_schema,
    )

    if key is None:
        key_columns = declared.key if declared is not None else ()
    elif isinstance(key, str):
        key_columns = (key,)
    else:
        key_columns = tuple(str(column) for column in key)
    for column in key_columns:
        if column not in relation.schema:
            raise RunError(
                f"key column {column!r} is not in run {relation.name!r} "
                f"(columns: {list(relation.schema.names)})"
            )
    return RunFile(relation, key_columns, source=path, declared=declared is not None)

"""The typed error of the run-diff subsystem."""

from __future__ import annotations


class RunError(ValueError):
    """A malformed run file, run spec or alignment request.

    ``path`` is a JSON-pointer-style location in the house style of
    :class:`repro.service.api.SpecError`: within a run *file* it points into
    the loaded rows (``/rows/3/price``) or the sidecar schema
    (``/columns/1/type``); within a service ``{"runs": ...}`` payload it
    points into the request (``/runs/left/records``).  The daemon and the
    fleet router both return it in the uniform 400 error envelope.
    """

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path

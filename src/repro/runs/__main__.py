"""The run-diff CLI: diff two run files, explain, fuzz, self-test.

::

    python -m repro.runs diff a.ndjson b.ndjson --key id [--tolerance 0.01]
                              [--compare tax] [--explain] [--json]
    python -m repro.runs --fuzz 200 --seed 7     # aligner vs brute-force oracle
    python -m repro.runs --self-test             # hermetic end-to-end smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.runs.align import align_runs, align_runs_reference
from repro.runs.bridge import AUTO, build_run_problem
from repro.runs.errors import RunError
from repro.runs.fuzz import fuzz_aligner
from repro.runs.loader import load_run


def _cmd_diff(args) -> int:
    left = load_run(args.left, key=args.key)
    right = load_run(args.right, key=args.key)
    key = left.key or right.key
    if not key:
        print(
            "error: no key declared (pass --key or add a *.schema.json sidecar)",
            file=sys.stderr,
        )
        return 2
    compare = (args.compare,) if args.compare else None
    alignment = align_runs(
        left.relation,
        right.relation,
        key,
        float_tolerance=args.tolerance,
        compare=compare,
    )
    if args.json:
        print(json.dumps(alignment.to_dict(), indent=2))
    else:
        print(alignment.describe(limit=args.max))
    if args.explain and not alignment.agree():
        problem = build_run_problem(
            left, right, key=key, compare=args.compare if args.compare else AUTO
        )
        report = problem.explain()
        print()
        print(report.describe())
    return 0 if alignment.agree() else 1


def _self_test() -> int:
    """Hermetic end-to-end smoke over the variants scenario.

    Covers: generator -> NDJSON round trip -> aligner (fast == reference ==
    gold) -> bridge -> byte-identical reports across the direct pipeline, the
    daemon (warm + cold), the fleet router, and an ingest-streamed re-explain.
    """
    from repro.datasets.variants import VariantsConfig, generate_variant_runs
    from repro.fleet.__main__ import canonical_report
    from repro.fleet.router import FleetRouter, serve_router_in_background
    from repro.fleet.worker import StaticWorker
    from repro.service import (
        ExplainService,
        ServiceClient,
        ServiceClientError,
        serve_in_background,
    )

    scenario = generate_variant_runs(VariantsConfig(num_rows=60, stale_stride=11))

    with tempfile.TemporaryDirectory() as tmp:
        paths = scenario.write(tmp)
        reference = load_run(paths["single_thread"])
        assert reference.key == ("id",), "sidecar key did not load"
        for variant in ("vectorized", "shared_state", "async_event_loop"):
            run = load_run(paths[variant])
            fast = align_runs(reference.relation, run.relation, reference.key)
            oracle = align_runs_reference(
                reference.relation, run.relation, reference.key
            )
            assert fast.canonical() == oracle.canonical(), variant
            gold = scenario.expected_kinds(variant)
            got = {
                kind: {tuple(d.key) for d in fast.disagreements if d.kind == kind}
                for kind in ("value_mismatch", "missing_in_b")
            }
            assert got == gold, f"{variant}: {got} != {gold}"
        print(
            "[runs] aligner matches the brute-force oracle and the generator "
            "gold on all 3 bug variants"
        )

        # Bridge -> direct pipeline.
        right = load_run(paths["shared_state"])
        problem = build_run_problem(reference, right)
        assert problem.compare == "tax" and problem.key == ("id",)
        direct = canonical_report(problem.explain().to_dict())

    runs_payload = {
        "runs": {
            "left": {
                "name": "single_thread",
                "records": scenario.runs["single_thread"],
            },
            "right": {
                "name": "shared_state",
                "records": scenario.runs["shared_state"],
            },
            "key": "id",
        }
    }

    # The daemon: cold, then warm (must be a report-cache hit), byte-identical.
    server, _ = serve_in_background(ExplainService())
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        cold = client.explain(runs_payload)
        warm = client.explain(runs_payload)
        assert canonical_report(cold) == direct, "daemon diverged from direct"
        assert canonical_report(warm) == direct, "warm daemon diverged"
        assert warm["service"]["cached_report"], "second runs request missed the cache"
        print("[runs] daemon: cold == warm == direct (warm is a report-cache hit)")

        # Malformed specs return typed 400 envelopes with JSON-pointer paths.
        try:
            client.explain(
                {"runs": {"left": {"records": [{"id": 1}]},
                          "right": {"records": [{"id": 1}], "name": "r"},
                          "key": "id"}}
            )
        except ServiceClientError as exc:
            assert exc.status == 400 and exc.path == "/runs/left/name", exc
        else:
            raise AssertionError("malformed runs spec did not 400")

        # A still-running variant streams rows through the live-delta path.
        extra = [
            {"id": 10_000 + i, "region": "north", "income": 100.0, "tax": 7.0}
            for i in range(2)
        ]
        client.ingest(
            "single_thread",
            "single_thread",
            [{"op": "insert", "record": record} for record in extra],
        )
        # Re-explain over the *live* databases with the plain declarative
        # payload (re-sending the runs spec would re-register the pre-delta
        # rows and undo the ingest).
        streamed = client.explain(problem.to_payload())
        # Oracle: recompute directly over the post-ingest rows.
        from repro.relational.relation import Relation
        from repro.datasets.variants import RUN_SCHEMA

        post_rows = scenario.runs["single_thread"] + extra
        # Pin compare to the streamed payload's column: AUTO would pick
        # "income" post-ingest (the one-sided inserts skew its sum too).
        oracle_problem = build_run_problem(
            Relation.from_records(post_rows, RUN_SCHEMA, name="single_thread"),
            scenario.relation("shared_state"),
            key=("id",),
            compare=problem.compare,
        )
        assert canonical_report(streamed) == canonical_report(
            oracle_problem.explain().to_dict()
        ), "ingest-streamed re-explain diverged from a direct recompute"
        print("[runs] ingest: streamed run rows re-explain identically to a recompute")
    finally:
        server.shutdown()

    # The fleet router over two worker pods.
    servers = []
    workers = []
    try:
        for index in range(2):
            worker_server, _ = serve_in_background(ExplainService())
            servers.append(worker_server)
            workers.append(
                StaticWorker(
                    f"pod-{index}",
                    f"http://127.0.0.1:{worker_server.server_address[1]}",
                )
            )
        router = FleetRouter(workers)
        router_server, _ = serve_router_in_background(router)
        servers.append(router_server)
        router_client = ServiceClient(
            f"http://127.0.0.1:{router_server.server_address[1]}"
        )
        routed = router_client.explain(runs_payload)
        assert canonical_report(routed) == direct, "router diverged from direct"
        print("[runs] fleet router: routed answer byte-identical to direct")
    finally:
        for running in servers:
            running.shutdown()

    # A short oracle fuzz so the self-test stands alone.
    fuzz_aligner(25, seed=3)
    print("[runs] 25-round aligner fuzz vs brute-force oracle passed")
    print("[runs] self-test OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--self-test", action="store_true", help="hermetic end-to-end smoke")
    parser.add_argument("--fuzz", type=int, metavar="N", help="fuzz the aligner for N rounds")
    parser.add_argument("--seed", type=int, default=7, help="fuzz seed")
    subparsers = parser.add_subparsers(dest="command")
    diff = subparsers.add_parser("diff", help="diff two run files by key")
    diff.add_argument("left")
    diff.add_argument("right")
    diff.add_argument("--key", help="alignment key column (falls back to sidecar keys)")
    diff.add_argument("--tolerance", type=float, default=0.0,
                      help="absolute tolerance for numeric comparisons")
    diff.add_argument("--compare", help="only compare this column (default: all shared)")
    diff.add_argument("--explain", action="store_true",
                      help="run the full Explain3D pipeline on the disagreement")
    diff.add_argument("--json", action="store_true", help="emit the report as JSON")
    diff.add_argument("--max", type=int, default=10, help="max disagreements to print")
    args = parser.parse_args(argv)

    try:
        if args.command == "diff":
            return _cmd_diff(args)
        if args.self_test:
            return _self_test()
        if args.fuzz:
            total = fuzz_aligner(args.fuzz, args.seed, verbose=True)
            print(
                f"[runs] {args.fuzz} fuzz rounds (seed {args.seed}): aligner "
                f"identical to the brute-force oracle across {total} disagreements"
            )
            return 0
    except RunError as exc:
        location = f" at {exc.path}" if exc.path else ""
        print(f"error{location}: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())

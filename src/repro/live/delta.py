"""Typed row-level deltas: the unit of live updates.

A :class:`Delta` is an ordered batch of :class:`RowChange` records emitted by
mutating a base relation (:meth:`Relation.insert` / :meth:`update` /
:meth:`delete`).  Each change carries the row's stable lineage id, its values
before and after, and a per-row content hash; the batch carries the relation's
content fingerprint before and after, plus a deterministic ``delta_id``
(content hash of the batch) used as the idempotency key of ``POST /ingest``.

Two application modes:

* :func:`apply_changes` mutates a relation **in place** and returns the merged
  batch delta -- the mode a single-owner caller uses;
* :func:`apply_changes_copy` is **copy-on-write**: it leaves the input
  untouched and returns a new relation (sharing the immutable ``Row`` objects
  of unchanged rows) plus the delta.  The service layer uses this so a
  concurrent reader holding the old relation keeps a fully consistent
  pre-delta view -- readers see either the old version or the new one, never a
  torn mix.

Change *specs* are the wire form (JSON-safe dicts)::

    {"op": "insert", "record": {"Program": "Math", "Degree": "B.S."}}
    {"op": "update", "row_id": "D1:2", "record": {"Degree": "B.A."}}
    {"op": "delete", "row_id": "D1:3"}

``row`` (a position) is accepted in place of ``row_id``; update records may be
partial (unnamed columns keep their values).  Malformed specs raise
:class:`DeltaError` with a JSON-pointer path; applying a delta against content
whose fingerprint no longer matches raises :class:`DeltaConflictError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.relational.relation import Relation

VALID_OPS = ("insert", "update", "delete")


class DeltaError(ValueError):
    """A malformed or inapplicable change spec (HTTP 400).

    ``path`` is a JSON-pointer-style location of the offending field within
    the ingest payload, mirroring :class:`repro.service.api.SpecError`.
    """

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path


class DeltaConflictError(RuntimeError):
    """A delta addressed to content that has since changed (HTTP 409).

    Raised when an ingest declares ``base_fingerprint`` and the live relation
    no longer matches it -- the caller built the delta against a stale
    snapshot and must re-read before retrying.
    """


def row_hash(row_id: str, values: tuple | None) -> str:
    """The per-row content hash carried by every :class:`RowChange`."""
    return hashlib.sha256(repr((row_id, values)).encode()).hexdigest()


@dataclass(frozen=True)
class RowChange:
    """One row-level change: op + stable row identity + before/after values."""

    op: str                  # "insert" | "update" | "delete"
    row_id: str              # the row's lineage id ("<relation>:<n>")
    before: tuple | None     # values before (update/delete; None for insert)
    after: tuple | None      # values after (insert/update; None for delete)
    row_hash: str            # content hash of (row_id, post-change values)

    @classmethod
    def make(
        cls, op: str, row_id: str, *, before: tuple | None, after: tuple | None
    ) -> "RowChange":
        values = after if after is not None else before
        return cls(op, row_id, before, after, row_hash(row_id, values))

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "row_id": self.row_id,
            "before": list(self.before) if self.before is not None else None,
            "after": list(self.after) if self.after is not None else None,
            "row_hash": self.row_hash,
        }


@dataclass(frozen=True)
class Delta:
    """An ordered batch of row changes to one relation.

    ``delta_id`` is deterministic in (relation, base fingerprint, changes), so
    re-submitting the same batch -- a client retry, a router failover replay --
    produces the same id and dedupes at every idempotency gate.
    """

    relation: str
    base_fingerprint: str
    new_fingerprint: str
    changes: tuple[RowChange, ...]
    delta_id: str

    @classmethod
    def make(
        cls,
        relation: str,
        base_fingerprint: str,
        new_fingerprint: str,
        changes: Sequence[RowChange],
    ) -> "Delta":
        digest = hashlib.sha256()
        digest.update(relation.encode())
        digest.update(base_fingerprint.encode())
        for change in changes:
            digest.update(change.op.encode())
            digest.update(change.row_id.encode())
            digest.update(change.row_hash.encode())
        return cls(
            relation=relation,
            base_fingerprint=base_fingerprint,
            new_fingerprint=new_fingerprint,
            changes=tuple(changes),
            delta_id=digest.hexdigest(),
        )

    @classmethod
    def single(
        cls, relation: str, base_fingerprint: str, new_fingerprint: str,
        change: RowChange,
    ) -> "Delta":
        return cls.make(relation, base_fingerprint, new_fingerprint, (change,))

    @staticmethod
    def merge(deltas: Sequence["Delta"]) -> "Delta":
        """Fold consecutive deltas to one relation into a single batch."""
        if not deltas:
            raise DeltaError("cannot merge an empty delta sequence")
        relations = {delta.relation for delta in deltas}
        if len(relations) != 1:
            raise DeltaError(f"cannot merge deltas across relations {sorted(relations)}")
        changes: list[RowChange] = []
        for delta in deltas:
            changes.extend(delta.changes)
        return Delta.make(
            deltas[0].relation,
            deltas[0].base_fingerprint,
            deltas[-1].new_fingerprint,
            changes,
        )

    @property
    def deletes_only(self) -> bool:
        return all(change.op == "delete" for change in self.changes)

    def deleted_ids(self) -> frozenset:
        return frozenset(
            change.row_id for change in self.changes if change.op == "delete"
        )

    def touched_ids(self) -> frozenset:
        return frozenset(change.row_id for change in self.changes)

    def counts(self) -> dict:
        out = {"insert": 0, "update": 0, "delete": 0}
        for change in self.changes:
            out[change.op] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "relation": self.relation,
            "delta_id": self.delta_id,
            "base_fingerprint": self.base_fingerprint,
            "new_fingerprint": self.new_fingerprint,
            "counts": self.counts(),
            "changes": [change.to_dict() for change in self.changes],
        }


# ---------------------------------------------------------------------------
# Change-spec validation (the wire form of POST /ingest)
# ---------------------------------------------------------------------------

def validate_change_specs(specs, path: str = "/changes") -> list[dict]:
    """Validate a list of change specs; returns them normalized.

    Shape errors raise :class:`DeltaError` with a JSON-pointer path.  Value
    errors (unknown columns, bad arity, missing rows) surface later, at apply
    time, against the actual schema.
    """
    if not isinstance(specs, list) or not specs:
        raise DeltaError("'changes' must be a non-empty list", path)
    normalized: list[dict] = []
    for index, spec in enumerate(specs):
        here = f"{path}/{index}"
        if not isinstance(spec, dict):
            raise DeltaError(
                f"each change is an object, got {type(spec).__name__}", here
            )
        op = str(spec.get("op", "")).lower()
        if op not in VALID_OPS:
            raise DeltaError(
                f"change op must be one of {list(VALID_OPS)}, got {spec.get('op')!r}",
                f"{here}/op",
            )
        entry: dict = {"op": op}
        if op in ("insert", "update"):
            if "record" not in spec:
                raise DeltaError(f"{op} change needs a 'record'", f"{here}/record")
            record = spec["record"]
            if not isinstance(record, (dict, list, tuple)):
                raise DeltaError(
                    "'record' is an object of column values (or a value list)",
                    f"{here}/record",
                )
            entry["record"] = record
        if op in ("update", "delete"):
            if "row_id" in spec:
                entry["row"] = str(spec["row_id"])
            elif "row" in spec:
                try:
                    entry["row"] = int(spec["row"])
                except (TypeError, ValueError):
                    raise DeltaError(
                        f"'row' must be an integer position, got {spec['row']!r}",
                        f"{here}/row",
                    ) from None
            else:
                raise DeltaError(
                    f"{op} change needs a 'row_id' (or integer 'row')",
                    f"{here}/row_id",
                )
        normalized.append(entry)
    return normalized


# ---------------------------------------------------------------------------
# Applying change specs
# ---------------------------------------------------------------------------

def _apply_one(relation: Relation, spec: dict, path: str) -> Delta:
    """Apply one normalized change spec; re-raise DeltaErrors with the path."""
    try:
        if spec["op"] == "insert":
            return relation.insert(spec["record"])
        if spec["op"] == "update":
            return relation.update(spec["row"], spec["record"])
        return relation.delete(spec["row"])
    except DeltaError as exc:
        raise DeltaError(str(exc), exc.path or path) from None


def apply_changes(
    relation: Relation,
    specs: Sequence[dict],
    *,
    expect_fingerprint: str | None = None,
    path: str = "/changes",
) -> Delta:
    """Apply a batch of change specs to ``relation`` in place; returns the Delta.

    ``expect_fingerprint`` (when given) must match the relation's current
    content or :class:`DeltaConflictError` is raised before anything mutates.
    Validation runs up front so a malformed spec mid-batch cannot leave the
    relation half-updated; a value-level failure (unknown row, bad column)
    can, so callers needing atomicity use :func:`apply_changes_copy`.
    """
    normalized = validate_change_specs(list(specs), path)
    if expect_fingerprint is not None:
        actual = relation.fingerprint()
        if actual != expect_fingerprint:
            raise DeltaConflictError(
                f"delta targets {relation.name!r} at fingerprint "
                f"{expect_fingerprint[:12]}..., but the live content is at "
                f"{actual[:12]}...; re-read and rebuild the delta"
            )
    deltas = [
        _apply_one(relation, spec, f"{path}/{index}")
        for index, spec in enumerate(normalized)
    ]
    return Delta.merge(deltas)


def apply_changes_copy(
    relation: Relation,
    specs: Sequence[dict],
    *,
    expect_fingerprint: str | None = None,
    path: str = "/changes",
) -> tuple[Relation, Delta]:
    """Copy-on-write apply: the input relation is never touched.

    Returns ``(new_relation, delta)``.  The copy shares the immutable ``Row``
    objects of unchanged rows (cheap for small deltas over large relations)
    and clones the rolling fingerprint state, so insert-only batches stay
    O(changes) instead of O(rows).  Any failure leaves the caller's relation
    exactly as it was -- the atomicity the service's swap-under-lock relies on.
    """
    clone = relation.copy()
    delta = apply_changes(
        clone, specs, expect_fingerprint=expect_fingerprint, path=path
    )
    return clone, delta

"""The delta fuzzer: random live updates must match a from-scratch rebuild.

``python -m repro.live --fuzz N --seed S`` drives N seeded trials, each
exercising the three layers of the live-update subsystem against the oracle
of full recomputation:

* **relation** -- a random insert/update/delete batch applied copy-on-write:
  the rolling fingerprint must be bit-identical to rehashing the resulting
  relation from scratch, the input relation must be untouched, and replaying
  the batch must be deterministic (same ``delta_id``, same fingerprint);
* **stats** -- incrementally merged ANALYZE statistics must agree with a
  full rescan on every exact quantity (row counts, per-column null counts;
  ndv exactly in the sub-sketch insert-only regime, bounds containment
  otherwise), and drift past the threshold must force a rescan;
* **service** -- ``ExplainService.ingest`` followed by a re-explain must be
  byte-identical (canonical report form) to a cold service built directly on
  the post-delta data, with the cache ledger (evicted/rewired/retained)
  accounted for.

Any violation raises :class:`FuzzFailure` with the seed that reproduces it;
the CI step runs this with a fixed seed as the subsystem's gate.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.live.delta import DeltaError, apply_changes, apply_changes_copy
from repro.relational.relation import Relation
from repro.stats.statistics import KMV_K, StatsCatalog, analyze_relation

PROGRAMS = (
    "Accounting", "Art", "Biology", "CS", "CSE", "Design",
    "ECE", "EE", "History", "Management", "Math", "Physics",
)
DEGREES = ("B.S.", "B.A.", None)


class FuzzFailure(AssertionError):
    """An invariant violation, tagged with the reproducing seed."""


def _check(condition: bool, seed: int, message: str) -> None:
    if not condition:
        raise FuzzFailure(f"[seed {seed}] {message}")


def _random_record(rng: random.Random) -> dict:
    return {
        "Program": rng.choice(PROGRAMS),
        "Degree": rng.choice(DEGREES),
        "Score": rng.choice([None, rng.randrange(1000)]),
    }


def _random_relation(rng: random.Random, *, name: str = "T") -> Relation:
    records = [_random_record(rng) for _ in range(rng.randrange(3, 24))]
    records[0]["Score"] = rng.randrange(1000)  # type every column on row 0
    records[0]["Degree"] = "B.S."
    return Relation.from_records(records, name=name)


def _random_specs(
    rng: random.Random,
    relation: Relation,
    *,
    max_changes: int = 8,
    make_insert=_random_record,
    make_update=None,
) -> list[dict]:
    """A random, *applicable* change-spec batch against ``relation``.

    Positions are generated against the evolving row count (specs apply in
    order), and updates always write a fresh never-seen value so the
    no-op-update guard never fires by accident.
    """
    if make_update is None:
        make_update = lambda r: {"Score": 10_000 + r.randrange(100_000)}  # noqa: E731
    length = len(relation)
    specs: list[dict] = []
    for _ in range(rng.randrange(1, max_changes + 1)):
        ops = ["insert"] + (["update", "delete"] if length > 0 else [])
        op = rng.choice(ops)
        if op == "insert":
            specs.append({"op": "insert", "record": make_insert(rng)})
            length += 1
        elif op == "update":
            specs.append({
                "op": "update",
                "row": rng.randrange(length),
                "record": make_update(rng),
            })
        else:
            specs.append({"op": "delete", "row": rng.randrange(length)})
            length -= 1
    return specs


# ---------------------------------------------------------------------------
# Layer 1: relation fingerprints
# ---------------------------------------------------------------------------

def fuzz_relation(rng: random.Random, seed: int) -> None:
    relation = _random_relation(rng)
    base_fp = relation.fingerprint()
    specs = _random_specs(rng, relation)

    new_relation, delta = apply_changes_copy(relation, specs)
    _check(
        relation.fingerprint() == base_fp, seed,
        "copy-on-write apply mutated the input relation",
    )
    _check(delta.base_fingerprint == base_fp, seed, "delta base fingerprint wrong")
    _check(
        delta.new_fingerprint == new_relation.fingerprint(), seed,
        "delta new fingerprint does not match the produced relation",
    )
    rebuilt = Relation(new_relation.schema, new_relation.rows, name=new_relation.name)
    _check(
        rebuilt.fingerprint() == new_relation.fingerprint(), seed,
        "rolling fingerprint diverged from a from-scratch rehash",
    )
    counts = delta.counts()
    _check(
        sum(counts.values()) == len(specs), seed,
        f"delta counts {counts} do not cover the {len(specs)} submitted changes",
    )
    _check(
        len(new_relation) == len(relation) + counts["insert"] - counts["delete"],
        seed, "post-delta row count arithmetic is off",
    )
    # Determinism: replaying the identical batch reproduces id + fingerprint.
    replay_relation, replay = apply_changes_copy(relation, specs)
    _check(replay.delta_id == delta.delta_id, seed, "delta_id is not deterministic")
    _check(
        replay_relation.fingerprint() == new_relation.fingerprint(), seed,
        "replayed batch produced a different fingerprint",
    )


# ---------------------------------------------------------------------------
# Layer 2: incremental ANALYZE
# ---------------------------------------------------------------------------

def fuzz_stats(rng: random.Random, seed: int) -> None:
    relation = _random_relation(rng)
    insert_only = rng.random() < 0.5
    if insert_only:
        specs = [
            {"op": "insert", "record": _random_record(rng)}
            for _ in range(rng.randrange(1, 6))
        ]
    else:
        specs = _random_specs(rng, relation)

    catalog = StatsCatalog()
    catalog.relation_stats(relation)  # prime the base entry
    new_relation, delta = apply_changes_copy(relation, specs)

    merged, mode = catalog.apply_delta(
        delta, new_relation, drift_threshold=float("inf")
    )
    _check(mode == "incremental", seed, f"expected incremental merge, got {mode!r}")
    rescan = analyze_relation(new_relation, fingerprint=delta.new_fingerprint)
    _check(
        merged.row_count == rescan.row_count == len(new_relation), seed,
        f"merged row_count {merged.row_count} != rescan {rescan.row_count}",
    )
    _check(merged.fingerprint == delta.new_fingerprint, seed,
           "merged stats carry the wrong fingerprint")
    merged_columns = {column.name: column for column in merged.columns}
    for rescan_column in rescan.columns:
        name = rescan_column.name
        column = merged_columns[name]
        _check(
            column.null_count == rescan_column.null_count, seed,
            f"column {name!r}: merged null_count {column.null_count} "
            f"!= rescan {rescan_column.null_count}",
        )
        if insert_only and rescan_column.distinct < KMV_K:
            _check(
                column.distinct == rescan_column.distinct, seed,
                f"column {name!r}: sub-sketch insert-only ndv "
                f"{column.distinct} != exact {rescan_column.distinct}",
            )
        else:  # deletes retained in the sketch -> an upper bound, clamped
            _check(
                column.distinct <= max(0, merged.row_count - column.null_count),
                seed, f"column {name!r}: ndv exceeds the non-null row bound",
            )
        if rescan_column.min_value is not None and column.min_value is not None:
            _check(
                column.min_value <= rescan_column.min_value
                and column.max_value >= rescan_column.max_value,
                seed, f"column {name!r}: merged bounds do not contain the data",
            )

    # Past the drift threshold the catalog must fall back to a full rescan.
    big = Relation.from_records(
        [{"Program": "CS", "Degree": "B.S.", "Score": i} for i in range(5)],
        name="T",
    )
    fresh = StatsCatalog()
    fresh.relation_stats(big)
    churned, churn_delta = apply_changes_copy(
        big, [{"op": "delete", "row": 0}, {"op": "delete", "row": 0}]
    )
    _, churn_mode = fresh.apply_delta(churn_delta, churned, drift_threshold=0.2)
    _check(churn_mode == "rescan", seed,
           f"40% churn should force a rescan, got {churn_mode!r}")


# ---------------------------------------------------------------------------
# Layer 3: service ingest vs. cold rebuild
# ---------------------------------------------------------------------------

def _figure1_service(db1, db2, matches):
    from repro.relational.expressions import col
    from repro.relational.query import Scan, count_query
    from repro.service.engine import ExplainRequest, ExplainService

    q1 = count_query("Q1", Scan("D1"), attribute="Program")
    q2 = count_query(
        "Q2", Scan("D2"), predicate=(col("Univ") == "A"), attribute="Major"
    )
    service = ExplainService()
    service.register_database(db1)
    service.register_database(db2)
    request = ExplainRequest(
        query_left=q1, database_left="D1",
        query_right=q2, database_right="D2",
        attribute_matches=matches,
    )
    return service, request


def fuzz_service(rng: random.Random, seed: int) -> None:
    from repro.datasets.sql_catalog import figure1_databases
    from repro.fleet.__main__ import canonical_report

    service, request = _figure1_service(*figure1_databases())
    service.explain(request)  # warm every cache layer

    # Generate the batch against an identical copy of the live content,
    # then apply it on both sides: live via ingest, oracle in place.
    cold_db1, cold_db2, cold_matches = figure1_databases()
    target = rng.choice(["D1", "D2"])
    oracle_relation = {"D1": cold_db1, "D2": cold_db2}[target].relation(target)
    if target == "D1":
        make_insert = lambda r: {  # noqa: E731
            "Program": r.choice(PROGRAMS), "Degree": r.choice(["B.S.", "B.A."]),
        }
        make_update = lambda r: {"Program": f"Prog{r.randrange(10**6)}"}  # noqa: E731
    else:
        make_insert = lambda r: {  # noqa: E731
            "Univ": r.choice(["A", "B"]), "Major": r.choice(PROGRAMS),
        }
        make_update = lambda r: {"Major": f"Major{r.randrange(10**6)}"}  # noqa: E731
    specs = _random_specs(
        rng, oracle_relation, max_changes=3,
        make_insert=make_insert, make_update=make_update,
    )

    summary = service.ingest(target, target, specs)
    _check(summary["applied"] is True, seed, "ingest did not apply")
    _check(summary["stats"] in ("none", "incremental", "rescan"), seed,
           f"unexpected stats mode {summary['stats']!r}")
    moves = summary["caches"]
    _check(
        all(moves[key] >= 0 for key in ("rewired", "evicted", "retained")),
        seed, f"cache ledger malformed: {moves}",
    )
    after = canonical_report(service.explain(request).report.to_dict())

    # The oracle: a cold service built directly on the post-delta data
    # (mutated before registration, so nothing incremental is in play).
    delta = apply_changes(oracle_relation, specs)
    _check(
        delta.new_fingerprint == summary["relation_fingerprint"], seed,
        "live and oracle relations diverged after the same batch",
    )
    cold, cold_request = _figure1_service(cold_db1, cold_db2, cold_matches)
    cold_answer = canonical_report(cold.explain(cold_request).report.to_dict())
    _check(
        after == cold_answer, seed,
        "post-ingest explain differs from a cold rebuild on the same data",
    )

    # Idempotency: re-submitting the same delta id is a no-op.
    duplicate = service.ingest(
        target, target, specs, delta_id=summary["delta_id"]
    )
    _check(duplicate["applied"] is False and duplicate.get("deduplicated"), seed,
           "duplicate delta id was re-applied")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def run_fuzz(trials: int, seed: int, *, service_every: int = 5) -> dict:
    """Run the fuzzer; returns a JSON-safe summary (raises on violation)."""
    checks = {"relation": 0, "stats": 0, "service": 0}
    for trial in range(trials):
        trial_seed = seed * 1_000_003 + trial
        rng = random.Random(trial_seed)
        fuzz_relation(rng, trial_seed)
        checks["relation"] += 1
        fuzz_stats(rng, trial_seed)
        checks["stats"] += 1
        if trial % service_every == 0:  # the expensive end-to-end oracle
            fuzz_service(rng, trial_seed)
            checks["service"] += 1
    return {"trials": trials, "seed": seed, "checks": checks, "ok": True}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Fuzz the live-update subsystem against full rebuilds.",
    )
    parser.add_argument("--fuzz", type=int, default=25, metavar="N",
                        help="number of trials (default 25)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="base random seed (default 0)")
    parser.add_argument("--service-every", type=int, default=5, metavar="K",
                        help="run the end-to-end service oracle every Kth trial")
    args = parser.parse_args(argv)
    try:
        summary = run_fuzz(args.fuzz, args.seed, service_every=args.service_every)
    except FuzzFailure as failure:
        print(f"FUZZ FAILURE: {failure}", file=sys.stderr)
        return 1
    print(json.dumps(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Delta-aware affectedness: which cached artifacts does a delta invalidate?

The service's Stage-1 artifacts (provenance, features, candidates, problems,
reports) are content-addressed by database fingerprint, so *any* delta re-keys
all of them.  The question this module answers is finer: did the delta change
the artifact's **content**, or only its key?

* Content changed -> the old entry is evicted; the next request recomputes.
* Content unchanged -> the old entry is *rewired* to its new key: same bytes,
  new address, zero recomputation.

The sound rewiring rule rests on provenance:

1. A delta to a relation the query never references cannot change its output
   (queries read only their referenced relations).
2. For a **monotone** query tree (no ``Difference``), a *delete-only* delta
   whose row ids appear in no output lineage cannot change the output either:
   monotone operators only ever derive output rows from input rows, so a base
   row absent from every output lineage contributed to nothing.
3. Everything else is conservatively affected.  Inserts and updates can
   create or alter output rows without any lineage warning; and a
   ``Difference`` (anti-join) is non-monotone -- deleting a right-side row can
   *grow* the output even though right-side rows never appear in its lineage.

The rules only ever err toward eviction: a rewire is performed exactly when
the recomputed artifact would be byte-identical (the live fuzzer and chaos
suite assert this continuously).
"""

from __future__ import annotations

from repro.live.delta import Delta
from repro.relational.query import Difference, Query, QueryNode


def is_monotone(node: QueryNode) -> bool:
    """True when the tree contains no non-monotone operator (``Difference``).

    Monotonicity is what makes lineage a complete witness: every output row
    of a monotone tree derives from specific input rows, so rows outside all
    lineages are provably irrelevant.  An anti-join breaks this -- its output
    depends on the *absence* of right-side rows.
    """
    if isinstance(node, Difference):
        return False
    return all(is_monotone(child) for child in node.children())


def lineage_union(provenance) -> frozenset:
    """All base-row ids contributing to a provenance relation's tuples."""
    ids: set = set()
    for tuple_ in provenance.tuples:
        ids |= tuple_.lineage
    return frozenset(ids)


def delta_affects(query: Query, delta: Delta, provenance=None) -> bool:
    """Would re-running ``query`` after ``delta`` produce a different artifact?

    ``provenance`` is the query's cached
    :class:`~repro.relational.provenance.ProvenanceRelation` when available;
    without it the lineage test cannot run and delete-only deltas are
    conservatively affected.  Returns False only when the post-delta artifact
    is provably byte-identical to the cached one.
    """
    if delta.relation not in query.root.referenced_relations():
        return False
    if not delta.deletes_only:
        return True
    if not is_monotone(query.root):
        return True
    if provenance is None:
        return True
    return bool(delta.deleted_ids() & lineage_union(provenance))

"""The live-update subsystem: row-level deltas under serving traffic.

Explain3D's pipeline assumes two frozen datasets; this package is what lets
the *service* built around it take writes without wholesale recomputation:

* :mod:`repro.live.delta` -- typed :class:`RowChange`/:class:`Delta` batches
  emitted by ``Relation.insert/update/delete``, change-spec validation for
  the ``POST /ingest`` wire form, and copy-on-write batch application;
* :mod:`repro.live.invalidation` -- the provenance-based affectedness rules
  deciding which cached artifacts a delta truly invalidates (evict) and
  which merely need re-keying to the new database fingerprint (rewire);
* incremental ANALYZE lives with the statistics themselves
  (:func:`repro.stats.statistics.merge_relation_stats`), and the serving
  front end (``ExplainService.ingest``, ``POST /ingest`` on daemon and
  router) in :mod:`repro.service` / :mod:`repro.fleet`.

``python -m repro.live --fuzz N --seed S`` runs the delta fuzzer: random
insert/update/delete sequences asserting that rolling fingerprints,
incrementally merged statistics and rewired caches all match a from-scratch
rebuild (the CI gate for this subsystem).
"""

from repro.live.delta import (
    Delta,
    DeltaConflictError,
    DeltaError,
    RowChange,
    apply_changes,
    apply_changes_copy,
    validate_change_specs,
)
from repro.live.invalidation import delta_affects, is_monotone, lineage_union

__all__ = [
    "Delta",
    "DeltaConflictError",
    "DeltaError",
    "RowChange",
    "apply_changes",
    "apply_changes_copy",
    "validate_change_specs",
    "delta_affects",
    "is_monotone",
    "lineage_union",
]

"""Rows and relations for the in-memory relational engine.

Rows carry *why-provenance*: the set of identifiers of the base rows they were
derived from.  Provenance is the backbone of Explain3D's Stage 1, which maps
query outputs back to the tuples that produced them (Definition 2.3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.relational.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, DataType, Schema


@dataclass(frozen=True)
class Row:
    """An immutable row: a tuple of values plus why-provenance.

    ``lineage`` holds identifiers of the base rows (``"<relation>:<position>"``)
    that this row was derived from.  Rows of base relations have a singleton
    lineage referring to themselves.
    """

    values: tuple
    lineage: frozenset = field(default_factory=frozenset)

    def value(self, schema: Schema, name: str):
        return self.values[schema.index(name)]

    def as_dict(self, schema: Schema) -> dict:
        return dict(zip(schema.names, self.values))

    def merged_lineage(self, other: "Row") -> frozenset:
        return self.lineage | other.lineage


def _row_digest_bytes(row: Row) -> bytes:
    """The bytes one row contributes to a relation fingerprint."""
    return repr((row.values, sorted(row.lineage))).encode()


class Relation:
    """An ordered bag of rows conforming to a schema.

    All algebraic operations return new relations; base relations additionally
    support row-level mutation (:meth:`insert` / :meth:`update` /
    :meth:`delete`), each emitting a typed :class:`~repro.live.delta.Delta`
    describing exactly what changed.  Duplicate rows are allowed (bag
    semantics), matching SQL behaviour for the queries the paper considers.
    """

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Row] | None = None,
        *,
        name: str = "",
    ):
        self.schema = schema
        self.name = name
        self._rows: list[Row] = list(rows) if rows is not None else []
        # The next lineage position is monotonic, never the current length:
        # after a delete, re-using ``len(rows)`` would hand a new row the
        # identity of one that still exists (or once existed) -- poisoning
        # provenance and the content fingerprint.  For pure-append relations
        # the counter equals the length, preserving historical ids.
        self._row_counter: int = len(self._rows)
        # Rolling fingerprint state: ``_fp_state`` is a sha256 object covering
        # schema + every row appended so far (appends roll it in O(1));
        # ``_fp_cache`` memoizes the hexdigest.  Mid-table mutation resets
        # both, and the next fingerprint() call rebuilds from scratch.
        self._fp_state = None
        self._fp_cache: str | None = None
        # Memoized column-vector view (see column_data); any mutation drops it.
        self._col_cache: tuple[list[list], list[frozenset]] | None = None

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[dict],
        schema: Schema | None = None,
        *,
        name: str = "",
    ) -> "Relation":
        """Build a base relation from a list of dictionaries.

        Each row receives a singleton lineage ``{"<name>:<position>"}`` so that
        provenance can be traced back to it.
        """
        if schema is None:
            schema = Schema.infer(records)
        relation = cls(schema, name=name)
        for record in records:
            values = schema.coerce_row([record.get(attr) for attr in schema.names])
            relation.append(values)
        return relation

    def append(self, values: Sequence, lineage: frozenset | None = None) -> Row:
        """Append a row of raw values; returns the created :class:`Row`."""
        coerced = self.schema.coerce_row(values)
        if lineage is None:
            label = self.name or "R"
            lineage = frozenset({f"{label}:{self._row_counter}"})
        row = Row(coerced, lineage)
        self._rows.append(row)
        self._row_counter += 1
        self._roll_fingerprint(row)
        return row

    def append_row(self, row: Row) -> None:
        if len(row.values) != len(self.schema):
            raise SchemaError(
                f"row arity {len(row.values)} does not match schema arity {len(self.schema)}"
            )
        self._rows.append(row)
        self._row_counter += 1
        self._roll_fingerprint(row)

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name or '<anonymous>'}, {len(self)} rows, {self.schema!r})"

    # -- accessors ----------------------------------------------------------------
    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def column(self, name: str) -> list:
        index = self.schema.index(name)
        return [row.values[index] for row in self._rows]

    def distinct_values(self, name: str) -> set:
        return set(self.column(name))

    def as_dicts(self) -> list[dict]:
        return [row.as_dict(self.schema) for row in self._rows]

    def row_id(self, index: int) -> str:
        """Identifier of a base row (only meaningful for base relations)."""
        label = self.name or "R"
        return f"{label}:{index}"

    def fingerprint(self) -> str:
        """A stable content hash of the relation (schema + rows + lineage).

        Two relations with the same typed schema and the same ordered rows
        (including their provenance lineage) produce the same fingerprint,
        regardless of how they were constructed.  The service layer uses this
        to content-address cached Stage-1 artifacts.

        The digest is maintained *incrementally*: appends roll the hash state
        in O(1), repeated calls on an unchanged relation return a memoized
        string, and only a mid-table :meth:`update`/:meth:`delete` forces a
        from-scratch rebuild on the next call.  The value is bit-identical to
        hashing schema + rows in order, however the relation was built.
        """
        if self._fp_cache is None:
            if self._fp_state is None:
                digest = hashlib.sha256()
                digest.update(
                    repr([str(attribute) for attribute in self.schema]).encode()
                )
                for row in self._rows:
                    digest.update(_row_digest_bytes(row))
                self._fp_state = digest
            self._fp_cache = self._fp_state.hexdigest()
        return self._fp_cache

    def _roll_fingerprint(self, row: Row) -> None:
        """Fold an appended row into the rolling digest (O(1) per append)."""
        if self._fp_state is not None:
            self._fp_state.update(_row_digest_bytes(row))
        self._fp_cache = None
        self._col_cache = None

    def _reset_fingerprint(self) -> None:
        """Invalidate the digest after a mid-table mutation (lazy rebuild)."""
        self._fp_state = None
        self._fp_cache = None
        self._col_cache = None

    def column_data(self) -> tuple[list[list], list[frozenset]]:
        """Column-vector view of the relation: ``(columns, lineage)``.

        ``columns`` holds one Python list per attribute; ``lineage`` one
        frozenset per row, with rows missing provenance assigned their
        positional base-row id -- exactly what a scan of this relation emits.
        The transpose is memoized (mutations invalidate it) and callers treat
        it as immutable, so the columnar executor can hand it out zero-copy.
        """
        if self._col_cache is None:
            width = len(self.schema)
            if self._rows:
                columns = [
                    list(column)
                    for column in zip(*(row.values for row in self._rows))
                ]
            else:
                columns = [[] for _ in range(width)]
            label = self.name or "R"
            lineage = [
                row.lineage or frozenset({f"{label}:{index}"})
                for index, row in enumerate(self._rows)
            ]
            self._col_cache = (columns, lineage)
        return self._col_cache

    def copy(self) -> "Relation":
        """A mutable copy sharing the immutable :class:`Row` objects.

        The rolling fingerprint state is cloned too, so appending to the copy
        stays O(1) per row instead of forcing a full rehash -- this is what
        makes copy-on-write delta application cheap for insert-only batches.
        """
        clone = Relation(self.schema, self._rows, name=self.name)
        clone._row_counter = self._row_counter
        if self._fp_state is not None:
            clone._fp_state = self._fp_state.copy()
            clone._fp_cache = self._fp_cache
        return clone

    # -- row-level mutation (the live-update delta source) ------------------------
    def _resolve_row(self, row_ref) -> int:
        """Index of a row by position or by its lineage id ("<name>:<n>")."""
        from repro.live.delta import DeltaError

        if isinstance(row_ref, int):
            if not 0 <= row_ref < len(self._rows):
                raise DeltaError(
                    f"row index {row_ref} out of range for {self.name or '<anonymous>'} "
                    f"({len(self._rows)} rows)"
                )
            return row_ref
        row_id = str(row_ref)
        for index, row in enumerate(self._rows):
            if row_id in row.lineage:
                return index
        raise DeltaError(
            f"no row with id {row_id!r} in {self.name or '<anonymous>'}"
        )

    def _record_values(self, record, *, base: Row | None = None) -> tuple:
        """Coerced values from a (possibly partial) record dict or a sequence."""
        from repro.live.delta import DeltaError

        if isinstance(record, dict):
            unknown = set(record) - set(self.schema.names)
            if unknown:
                raise UnknownAttributeError(sorted(unknown)[0], self.schema.names)
            merged = base.as_dict(self.schema) if base is not None else {}
            merged.update(record)
            values = [merged.get(name) for name in self.schema.names]
        elif isinstance(record, (list, tuple)):
            if len(record) != len(self.schema):
                raise DeltaError(
                    f"row arity {len(record)} does not match schema arity "
                    f"{len(self.schema)}"
                )
            values = list(record)
        else:
            raise DeltaError(
                f"a row is a record object or a value list, got "
                f"{type(record).__name__}"
            )
        return self.schema.coerce_row(values)

    def insert(self, record) -> "Delta":
        """Append one row from a record dict (or value list); emits a Delta.

        The new row receives a fresh, never-recycled lineage id; the rolling
        fingerprint is advanced in O(1).
        """
        from repro.live.delta import Delta, RowChange

        base_fingerprint = self.fingerprint()
        row = self.append(self._record_values(record))
        (row_id,) = row.lineage
        change = RowChange.make("insert", row_id, before=None, after=row.values)
        return Delta.single(
            self.name, base_fingerprint, self.fingerprint(), change
        )

    def update(self, row_ref, record) -> "Delta":
        """Replace (or partially update) one row in place; emits a Delta.

        ``row_ref`` is a position or a lineage id; the row keeps its identity
        (lineage), so downstream provenance still points at it.  Partial
        record dicts merge into the existing values.
        """
        from repro.live.delta import Delta, DeltaError, RowChange

        index = self._resolve_row(row_ref)
        old_row = self._rows[index]
        values = self._record_values(record, base=old_row)
        if values == old_row.values:
            raise DeltaError(
                f"update of {sorted(old_row.lineage)} changes nothing"
            )
        base_fingerprint = self.fingerprint()
        self._rows[index] = Row(values, old_row.lineage)
        self._reset_fingerprint()
        row_id = min(old_row.lineage) if old_row.lineage else self.row_id(index)
        change = RowChange.make(
            "update", row_id, before=old_row.values, after=values
        )
        return Delta.single(
            self.name, base_fingerprint, self.fingerprint(), change
        )

    def delete(self, row_ref) -> "Delta":
        """Remove one row (by position or lineage id); emits a Delta.

        The freed lineage id is never reused -- later inserts draw from the
        monotonic counter -- so a delete + insert can never alias an old row.
        """
        from repro.live.delta import Delta, RowChange

        index = self._resolve_row(row_ref)
        old_row = self._rows[index]
        base_fingerprint = self.fingerprint()
        del self._rows[index]
        self._reset_fingerprint()
        row_id = min(old_row.lineage) if old_row.lineage else self.row_id(index)
        change = RowChange.make(
            "delete", row_id, before=old_row.values, after=None
        )
        return Delta.single(
            self.name, base_fingerprint, self.fingerprint(), change
        )

    # -- algebra ------------------------------------------------------------------
    def select(self, predicate) -> "Relation":
        """Rows satisfying ``predicate`` (a callable or Predicate over row dicts)."""
        result = Relation(self.schema, name=self.name)
        for row in self._rows:
            record = row.as_dict(self.schema)
            if predicate(record):
                result.append_row(row)
        return result

    def project(self, names: Sequence[str]) -> "Relation":
        """Projection onto ``names`` (bag semantics; lineage preserved)."""
        schema = self.schema.project(names)
        indices = [self.schema.index(name) for name in names]
        result = Relation(schema, name=self.name)
        for row in self._rows:
            result.append_row(Row(tuple(row.values[i] for i in indices), row.lineage))
        return result

    def rename(self, mapping: dict[str, str]) -> "Relation":
        schema = self.schema.rename(mapping)
        return Relation(schema, self._rows, name=self.name)

    def extend_column(self, attribute: Attribute, values: Sequence) -> "Relation":
        """Return a relation with one extra column appended."""
        if len(values) != len(self._rows):
            raise SchemaError("extend_column needs one value per row")
        schema = self.schema.extend([attribute])
        result = Relation(schema, name=self.name)
        for row, value in zip(self._rows, values):
            coerced = attribute.dtype.coerce(value)
            result.append_row(Row(row.values + (coerced,), row.lineage))
        return result

    def union(self, other: "Relation") -> "Relation":
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"union requires identical schemas: {self.schema.names} vs {other.schema.names}"
            )
        result = Relation(self.schema, list(self._rows), name=self.name)
        for row in other:
            result.append_row(row)
        return result

    def distinct(self) -> "Relation":
        """Duplicate elimination; lineages of duplicates are merged."""
        seen: dict[tuple, frozenset] = {}
        order: list[tuple] = []
        for row in self._rows:
            if row.values in seen:
                seen[row.values] = seen[row.values] | row.lineage
            else:
                seen[row.values] = row.lineage
                order.append(row.values)
        result = Relation(self.schema, name=self.name)
        for values in order:
            result.append_row(Row(values, seen[values]))
        return result

    def sorted_by(self, name: str, *, reverse: bool = False) -> "Relation":
        index = self.schema.index(name)
        rows = sorted(
            self._rows,
            key=lambda row: (row.values[index] is None, row.values[index]),
            reverse=reverse,
        )
        return Relation(self.schema, rows, name=self.name)

    def head(self, count: int) -> "Relation":
        return Relation(self.schema, self._rows[:count], name=self.name)

    # -- pretty printing ----------------------------------------------------------
    def to_table(self, *, max_rows: int = 20) -> str:
        """A plain-text rendering, used by the examples and benchmark reports."""
        names = self.schema.names
        shown = self._rows[:max_rows]
        cells = [[str(value) for value in row.values] for row in shown]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells]) if cells else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "-+-".join("-" * width for width in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

"""Rows and relations for the in-memory relational engine.

Rows carry *why-provenance*: the set of identifiers of the base rows they were
derived from.  Provenance is the backbone of Explain3D's Stage 1, which maps
query outputs back to the tuples that produced them (Definition 2.3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.relational.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, DataType, Schema


@dataclass(frozen=True)
class Row:
    """An immutable row: a tuple of values plus why-provenance.

    ``lineage`` holds identifiers of the base rows (``"<relation>:<position>"``)
    that this row was derived from.  Rows of base relations have a singleton
    lineage referring to themselves.
    """

    values: tuple
    lineage: frozenset = field(default_factory=frozenset)

    def value(self, schema: Schema, name: str):
        return self.values[schema.index(name)]

    def as_dict(self, schema: Schema) -> dict:
        return dict(zip(schema.names, self.values))

    def merged_lineage(self, other: "Row") -> frozenset:
        return self.lineage | other.lineage


class Relation:
    """An ordered bag of rows conforming to a schema.

    Relations are append-only; all algebraic operations return new relations.
    Duplicate rows are allowed (bag semantics), matching SQL behaviour for the
    queries the paper considers.
    """

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Row] | None = None,
        *,
        name: str = "",
    ):
        self.schema = schema
        self.name = name
        self._rows: list[Row] = list(rows) if rows is not None else []

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[dict],
        schema: Schema | None = None,
        *,
        name: str = "",
    ) -> "Relation":
        """Build a base relation from a list of dictionaries.

        Each row receives a singleton lineage ``{"<name>:<position>"}`` so that
        provenance can be traced back to it.
        """
        if schema is None:
            schema = Schema.infer(records)
        relation = cls(schema, name=name)
        for record in records:
            values = schema.coerce_row([record.get(attr) for attr in schema.names])
            relation.append(values)
        return relation

    def append(self, values: Sequence, lineage: frozenset | None = None) -> Row:
        """Append a row of raw values; returns the created :class:`Row`."""
        coerced = self.schema.coerce_row(values)
        if lineage is None:
            label = self.name or "R"
            lineage = frozenset({f"{label}:{len(self._rows)}"})
        row = Row(coerced, lineage)
        self._rows.append(row)
        return row

    def append_row(self, row: Row) -> None:
        if len(row.values) != len(self.schema):
            raise SchemaError(
                f"row arity {len(row.values)} does not match schema arity {len(self.schema)}"
            )
        self._rows.append(row)

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name or '<anonymous>'}, {len(self)} rows, {self.schema!r})"

    # -- accessors ----------------------------------------------------------------
    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def column(self, name: str) -> list:
        index = self.schema.index(name)
        return [row.values[index] for row in self._rows]

    def distinct_values(self, name: str) -> set:
        return set(self.column(name))

    def as_dicts(self) -> list[dict]:
        return [row.as_dict(self.schema) for row in self._rows]

    def row_id(self, index: int) -> str:
        """Identifier of a base row (only meaningful for base relations)."""
        label = self.name or "R"
        return f"{label}:{index}"

    def fingerprint(self) -> str:
        """A stable content hash of the relation (schema + rows + lineage).

        Two relations with the same typed schema and the same ordered rows
        (including their provenance lineage) produce the same fingerprint,
        regardless of how they were constructed.  The service layer uses this
        to content-address cached Stage-1 artifacts.
        """
        digest = hashlib.sha256()
        digest.update(repr([str(attribute) for attribute in self.schema]).encode())
        for row in self._rows:
            digest.update(repr((row.values, sorted(row.lineage))).encode())
        return digest.hexdigest()

    # -- algebra ------------------------------------------------------------------
    def select(self, predicate) -> "Relation":
        """Rows satisfying ``predicate`` (a callable or Predicate over row dicts)."""
        result = Relation(self.schema, name=self.name)
        for row in self._rows:
            record = row.as_dict(self.schema)
            if predicate(record):
                result.append_row(row)
        return result

    def project(self, names: Sequence[str]) -> "Relation":
        """Projection onto ``names`` (bag semantics; lineage preserved)."""
        schema = self.schema.project(names)
        indices = [self.schema.index(name) for name in names]
        result = Relation(schema, name=self.name)
        for row in self._rows:
            result.append_row(Row(tuple(row.values[i] for i in indices), row.lineage))
        return result

    def rename(self, mapping: dict[str, str]) -> "Relation":
        schema = self.schema.rename(mapping)
        return Relation(schema, self._rows, name=self.name)

    def extend_column(self, attribute: Attribute, values: Sequence) -> "Relation":
        """Return a relation with one extra column appended."""
        if len(values) != len(self._rows):
            raise SchemaError("extend_column needs one value per row")
        schema = self.schema.extend([attribute])
        result = Relation(schema, name=self.name)
        for row, value in zip(self._rows, values):
            coerced = attribute.dtype.coerce(value)
            result.append_row(Row(row.values + (coerced,), row.lineage))
        return result

    def union(self, other: "Relation") -> "Relation":
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"union requires identical schemas: {self.schema.names} vs {other.schema.names}"
            )
        result = Relation(self.schema, list(self._rows), name=self.name)
        for row in other:
            result.append_row(row)
        return result

    def distinct(self) -> "Relation":
        """Duplicate elimination; lineages of duplicates are merged."""
        seen: dict[tuple, frozenset] = {}
        order: list[tuple] = []
        for row in self._rows:
            if row.values in seen:
                seen[row.values] = seen[row.values] | row.lineage
            else:
                seen[row.values] = row.lineage
                order.append(row.values)
        result = Relation(self.schema, name=self.name)
        for values in order:
            result.append_row(Row(values, seen[values]))
        return result

    def sorted_by(self, name: str, *, reverse: bool = False) -> "Relation":
        index = self.schema.index(name)
        rows = sorted(
            self._rows,
            key=lambda row: (row.values[index] is None, row.values[index]),
            reverse=reverse,
        )
        return Relation(self.schema, rows, name=self.name)

    def head(self, count: int) -> "Relation":
        return Relation(self.schema, self._rows[:count], name=self.name)

    # -- pretty printing ----------------------------------------------------------
    def to_table(self, *, max_rows: int = 20) -> str:
        """A plain-text rendering, used by the examples and benchmark reports."""
        names = self.schema.names
        shown = self._rows[:max_rows]
        cells = [[str(value) for value in row.values] for row in shown]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells]) if cells else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "-+-".join("-" * width for width in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

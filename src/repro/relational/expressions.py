"""Predicate expressions for selections and join conditions.

The paper considers queries of the form ``Q = pi_o sigma_C(X)`` where the
condition ``C`` may use any comparison operators (no UDFs).  This module
provides a small predicate AST that can be evaluated against a row dictionary,
plus a fluent ``col("name")`` helper for building conditions in examples and
tests.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.relational.errors import ExecutionError

_OPERATORS: dict[str, Callable] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compare(op: str, left, right) -> bool:
    """Apply a comparison operator with SQL-ish NULL semantics.

    Any comparison involving ``None`` is false (like SQL's three-valued logic
    collapsing to NOT TRUE in a WHERE clause).
    """
    if left is None or right is None:
        return False
    func = _OPERATORS.get(op)
    if func is None:
        raise ExecutionError(f"unsupported comparison operator {op!r}")
    try:
        return bool(func(left, right))
    except TypeError as exc:
        raise ExecutionError(f"cannot compare {left!r} {op} {right!r}") from exc


class Predicate:
    """Base class for all predicate expressions."""

    def __call__(self, record: dict) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def attributes(self) -> set[str]:
        """Names of the attributes this predicate references."""
        return set()


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """A predicate that accepts every row (``sigma_true`` = identity)."""

    def __call__(self, record: dict) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TRUE"


@dataclass(frozen=True)
class Comparison(Predicate):
    """Compare an attribute against a constant: ``attr op value``."""

    attribute: str
    op: str
    value: object

    def __call__(self, record: dict) -> bool:
        return _compare(self.op, record.get(self.attribute), self.value)

    def attributes(self) -> set[str]:
        return {self.attribute}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.attribute} {self.op} {self.value!r})"


@dataclass(frozen=True)
class AttributeComparison(Predicate):
    """Compare two attributes: ``attr1 op attr2`` (used for join conditions)."""

    left: str
    op: str
    right: str

    def __call__(self, record: dict) -> bool:
        return _compare(self.op, record.get(self.left), record.get(self.right))

    def attributes(self) -> set[str]:
        return {self.left, self.right}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Membership(Predicate):
    """``attr IN (v1, v2, ...)`` membership test."""

    attribute: str
    values: tuple

    def __call__(self, record: dict) -> bool:
        value = record.get(self.attribute)
        return value is not None and value in self.values

    def attributes(self) -> set[str]:
        return {self.attribute}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.attribute} IN {self.values!r})"


@dataclass(frozen=True)
class Contains(Predicate):
    """Substring containment test on string attributes."""

    attribute: str
    needle: str
    case_sensitive: bool = False

    def __call__(self, record: dict) -> bool:
        value = record.get(self.attribute)
        if value is None:
            return False
        haystack = str(value)
        needle = self.needle
        if not self.case_sensitive:
            haystack = haystack.lower()
            needle = needle.lower()
        return needle in haystack

    def attributes(self) -> set[str]:
        return {self.attribute}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.attribute} CONTAINS {self.needle!r})"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``attr IS NULL`` (or ``IS NOT NULL`` with ``negate=True``)."""

    attribute: str
    negate: bool = False

    def __call__(self, record: dict) -> bool:
        is_null = record.get(self.attribute) is None
        return not is_null if self.negate else is_null

    def attributes(self) -> set[str]:
        return {self.attribute}


class And(Predicate):
    """Conjunction of child predicates."""

    def __init__(self, *children: Predicate):
        self.children = tuple(children)

    def __call__(self, record: dict) -> bool:
        return all(child(record) for child in self.children)

    def attributes(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.attributes()
        return names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " AND ".join(repr(child) for child in self.children) + ")"


class Or(Predicate):
    """Disjunction of child predicates."""

    def __init__(self, *children: Predicate):
        self.children = tuple(children)

    def __call__(self, record: dict) -> bool:
        return any(child(record) for child in self.children)

    def attributes(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.attributes()
        return names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " OR ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a child predicate."""

    child: Predicate

    def __call__(self, record: dict) -> bool:
        return not self.child(record)

    def attributes(self) -> set[str]:
        return self.child.attributes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"(NOT {self.child!r})"


class ColumnRef:
    """Fluent builder: ``col("year") >= 1990`` produces a :class:`Comparison`."""

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):  # type: ignore[override]
        return Comparison(self.name, "=", other)

    def __ne__(self, other):  # type: ignore[override]
        return Comparison(self.name, "!=", other)

    def __lt__(self, other):
        return Comparison(self.name, "<", other)

    def __le__(self, other):
        return Comparison(self.name, "<=", other)

    def __gt__(self, other):
        return Comparison(self.name, ">", other)

    def __ge__(self, other):
        return Comparison(self.name, ">=", other)

    def __hash__(self):
        return hash(self.name)

    def isin(self, values: Iterable) -> Membership:
        return Membership(self.name, tuple(values))

    def contains(self, needle: str, *, case_sensitive: bool = False) -> Contains:
        return Contains(self.name, needle, case_sensitive)

    def is_null(self) -> IsNull:
        return IsNull(self.name)

    def not_null(self) -> IsNull:
        return IsNull(self.name, negate=True)

    def equals_column(self, other: "ColumnRef | str") -> AttributeComparison:
        other_name = other.name if isinstance(other, ColumnRef) else str(other)
        return AttributeComparison(self.name, "=", other_name)


def col(name: str) -> ColumnRef:
    """Shorthand for building predicates: ``col("Univ") == "A"``."""
    return ColumnRef(name)

"""In-memory relational engine with provenance tracking.

This subpackage is the data substrate for the Explain3D reproduction.  It
provides:

* :mod:`repro.relational.schema` -- attributes, data types, and schemas.
* :mod:`repro.relational.relation` -- immutable rows and relations.
* :mod:`repro.relational.expressions` -- predicate expressions used in
  selections and join conditions.
* :mod:`repro.relational.query` -- a small relational-algebra query AST of the
  form ``Q = pi_o sigma_C(X)`` where ``X`` may contain joins, unions and
  subqueries and ``o`` is either a projection list or one of the five SQL
  aggregates.
* :mod:`repro.relational.executor` -- a query executor over a
  :class:`~repro.relational.executor.Database` that tracks why-provenance
  (the set of base rows each output row derives from).
* :mod:`repro.relational.provenance` -- derivation of the provenance relation
  ``P(A1, ..., Ak, I)`` of Definition 2.3 in the paper.
* :mod:`repro.relational.csvio` -- CSV and record-list loading helpers.
"""

from repro.relational.schema import Attribute, DataType, Schema
from repro.relational.relation import Relation, Row
from repro.relational.expressions import (
    And,
    AttributeComparison,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
    col,
)
from repro.relational.query import (
    AggregateFunction,
    Aggregate,
    Join,
    Project,
    Query,
    Scan,
    Select,
    Union,
)
from repro.relational.executor import Database, execute
from repro.relational.provenance import ProvenanceRelation, ProvenanceTuple, provenance_relation
from repro.relational.errors import (
    ExecutionError,
    RelationalError,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)

__all__ = [
    "Attribute",
    "DataType",
    "Schema",
    "Relation",
    "Row",
    "Predicate",
    "Comparison",
    "AttributeComparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "col",
    "Query",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Union",
    "Aggregate",
    "AggregateFunction",
    "Database",
    "execute",
    "ProvenanceRelation",
    "ProvenanceTuple",
    "provenance_relation",
    "RelationalError",
    "SchemaError",
    "ExecutionError",
    "UnknownAttributeError",
    "UnknownRelationError",
]

"""Relational-algebra query AST of the form ``Q = pi_o sigma_C(X)``.

The paper (Section 2.1) focuses on queries whose outermost shape is a
projection (either a set of attributes or one of the five SQL aggregates
SUM/COUNT/AVG/MAX/MIN) over a selection over an arbitrary inner expression
``X`` that may contain joins, unions and subqueries.  This module defines the
AST; :mod:`repro.relational.executor` evaluates it.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, fields
from typing import Optional, Sequence

from repro.relational.errors import EmptyAggregateError, ExecutionError
from repro.relational.expressions import Predicate, TruePredicate


class AggregateFunction(enum.Enum):
    """The five SQL aggregate functions supported by the paper's query class."""

    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MAX = "MAX"
    MIN = "MIN"

    @property
    def requires_one_to_one(self) -> bool:
        """Whether canonicalization must preserve individual tuples.

        Per Section 3.1, canonicalization sums impacts of grouped tuples, which
        is only sound for SUM and COUNT.  AVG/MAX/MIN require a strict
        one-to-one mapping and are left un-grouped.
        """
        return self in (AggregateFunction.AVG, AggregateFunction.MAX, AggregateFunction.MIN)

    def combine(self, values: Sequence[float]) -> float:
        """Apply the aggregate to a sequence of numeric values.

        COUNT is value-agnostic: it counts non-NULL entries without touching
        their types.  The numeric aggregates coerce to float when possible
        (SQL-style implicit cast), so they work over string columns that hold
        numbers -- e.g. the ``MovieInfo.info`` attribute of the IMDb view 2
        schema -- and raise :class:`ExecutionError` otherwise.
        """
        if self is AggregateFunction.COUNT:
            return float(sum(1 for value in values if value is not None))
        cleaned = []
        for value in values:
            if value is None:
                continue
            try:
                cleaned.append(float(value))
            except (TypeError, ValueError):
                raise ExecutionError(
                    f"{self.value} over non-numeric value {value!r}"
                ) from None
        if not cleaned:
            raise EmptyAggregateError(self.value)
        if self is AggregateFunction.SUM:
            return float(sum(cleaned))
        if self is AggregateFunction.AVG:
            return float(sum(cleaned)) / len(cleaned)
        if self is AggregateFunction.MAX:
            return float(max(cleaned))
        return float(min(cleaned))


class QueryNode:
    """Base class for all query AST nodes."""

    def children(self) -> tuple["QueryNode", ...]:
        return ()

    def referenced_relations(self) -> set[str]:
        names: set[str] = set()
        for child in self.children():
            names |= child.referenced_relations()
        return names

    def to_sql(self) -> str:
        """SQL text for this tree (see :func:`repro.sql.lower.node_to_sql`).

        Re-parsing and re-lowering the printed SQL yields a
        fingerprint-identical AST; constructs with no SQL form (ad-hoc
        callable predicates) raise :class:`repro.sql.errors.SqlPrintError`.
        """
        from repro.sql.lower import node_to_sql

        return node_to_sql(self)


@dataclass(frozen=True)
class Scan(QueryNode):
    """A reference to a base relation in the database."""

    relation: str

    def referenced_relations(self) -> set[str]:
        return {self.relation}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scan({self.relation})"


@dataclass(frozen=True)
class Select(QueryNode):
    """``sigma_C(child)``: rows of the child satisfying the predicate."""

    child: QueryNode
    predicate: Predicate

    def children(self) -> tuple[QueryNode, ...]:
        return (self.child,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Select({self.predicate!r}, {self.child!r})"


@dataclass(frozen=True)
class Project(QueryNode):
    """``pi_A(child)``: projection onto a list of attributes."""

    child: QueryNode
    attributes: tuple[str, ...]
    distinct: bool = False

    def children(self) -> tuple[QueryNode, ...]:
        return (self.child,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "DISTINCT " if self.distinct else ""
        return f"Project({kind}{list(self.attributes)}, {self.child!r})"


@dataclass(frozen=True)
class Join(QueryNode):
    """Theta-join of two children.

    ``on`` lists equality pairs ``(left_attr, right_attr)``; an optional extra
    ``condition`` predicate is evaluated over the concatenated row.
    """

    left: QueryNode
    right: QueryNode
    on: tuple[tuple[str, str], ...] = ()
    condition: Optional[Predicate] = None

    def children(self) -> tuple[QueryNode, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Join({self.left!r}, {self.right!r}, on={list(self.on)})"


@dataclass(frozen=True)
class Union(QueryNode):
    """Bag union of two or more children with identical schemas."""

    inputs: tuple[QueryNode, ...]

    def children(self) -> tuple[QueryNode, ...]:
        return self.inputs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Union({list(self.inputs)})"


@dataclass(frozen=True)
class Difference(QueryNode):
    """Rows of ``left`` whose key attributes do not appear in ``right``.

    Used to express the NOT IN / NOT EXISTS subqueries of the IMDb template
    Q10 ("actresses who have not starred in any <genre> movies").
    """

    left: QueryNode
    right: QueryNode
    on: tuple[str, ...]

    def children(self) -> tuple[QueryNode, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Difference({self.left!r}, {self.right!r}, on={list(self.on)})"


@dataclass(frozen=True)
class Aggregate(QueryNode):
    """``gamma_{aggr(attr)}(child)``: a single-result aggregate (optionally grouped)."""

    child: QueryNode
    function: AggregateFunction
    attribute: Optional[str] = None
    group_by: tuple[str, ...] = ()
    alias: str = "agg"

    def __post_init__(self):
        if self.function is not AggregateFunction.COUNT and self.attribute is None:
            raise ExecutionError(f"{self.function.value} requires an attribute")

    def children(self) -> tuple[QueryNode, ...]:
        return (self.child,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = self.attribute if self.attribute is not None else "*"
        return f"Aggregate({self.function.value}({target}), {self.child!r})"


@dataclass(frozen=True)
class Query:
    """A named query: the paper's ``Q = pi_o sigma_C(X)``.

    ``root`` is the full AST (projection or aggregate at the top).  ``name`` is
    a human-readable label ("Q1", "Q2", ...) used in provenance identifiers and
    reports.  ``description`` optionally records the natural-language question
    the query answers, which is how semantic similarity is communicated.
    """

    name: str
    root: QueryNode
    description: str = ""

    def referenced_relations(self) -> set[str]:
        return self.root.referenced_relations()

    def fingerprint(self) -> str:
        """A stable content hash of the query (name + full AST).

        The name participates because provenance keys embed it
        (``"P[Q1]:3"``).  The AST is walked field by field (node reprs are
        cosmetic and lossy), so every attribute, predicate, group-by list and
        join condition contributes.  Predicates have deterministic reprs;
        ad-hoc callable conditions fall back to their default repr, which is
        only stable within one process (such queries still cache correctly
        in-memory, they just never share cache entries across processes).
        """
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        digest.update(repr(_canonical_description(self.root)).encode())
        return digest.hexdigest()

    def to_sql(self) -> str:
        """SQL text of the query body (the name lives outside the SQL)."""
        return self.root.to_sql()

    def explain_plan(self, db, *, run: bool = True, optimize: bool = True):
        """The optimized physical plan of this query over ``db`` (EXPLAIN).

        Returns a :class:`repro.plan.PlanExplanation`: ``describe()`` prints
        the operator tree, ``to_dict()``/``to_json()`` serialize it.  With
        ``run=True`` (the default) the plan is executed once and every
        operator is annotated with its actual row count and timing.
        """
        from repro.plan import plan_query

        return plan_query(self, db, optimize_tree=optimize).explain(run=run)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.root, Aggregate)

    @property
    def aggregate_function(self) -> Optional[AggregateFunction]:
        if isinstance(self.root, Aggregate):
            return self.root.function
        return None

    @property
    def aggregate_attribute(self) -> Optional[str]:
        if isinstance(self.root, Aggregate):
            return self.root.attribute
        return None

    @property
    def inner(self) -> QueryNode:
        """The query below the outermost projection/aggregation (``sigma_C(X)``)."""
        if isinstance(self.root, (Aggregate, Project)):
            return self.root.child
        return self.root

    @property
    def output_attributes(self) -> tuple[str, ...]:
        if isinstance(self.root, Project):
            return self.root.attributes
        if isinstance(self.root, Aggregate):
            return (self.root.alias,)
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query({self.name}: {self.root!r})"


def _canonical_description(node) -> object:
    """A lossless, deterministic structure describing a query AST node.

    Unlike the node reprs (cosmetic, and e.g. ``Join.__repr__`` omits the
    extra condition), this covers every dataclass field recursively.
    """
    if isinstance(node, QueryNode):
        return (type(node).__name__,) + tuple(
            (f.name, _canonical_description(getattr(node, f.name))) for f in fields(node)
        )
    if isinstance(node, (list, tuple)):
        return tuple(_canonical_description(item) for item in node)
    if isinstance(node, enum.Enum):
        return (type(node).__name__, node.value)
    return repr(node)


# ---------------------------------------------------------------------------
# Convenience constructors used throughout examples, datasets and tests.
# ---------------------------------------------------------------------------

def scan(relation: str) -> Scan:
    return Scan(relation)


def where(child: QueryNode, predicate: Predicate | None) -> QueryNode:
    """Wrap ``child`` in a selection (no-op for ``None``/``TruePredicate``)."""
    if predicate is None or isinstance(predicate, TruePredicate):
        return child
    return Select(child, predicate)


def count_query(
    name: str,
    source: QueryNode,
    *,
    predicate: Predicate | None = None,
    attribute: str | None = None,
    description: str = "",
) -> Query:
    """``SELECT COUNT(attribute) FROM source WHERE predicate``."""
    root = Aggregate(where(source, predicate), AggregateFunction.COUNT, attribute, alias="count")
    return Query(name, root, description)


def sum_query(
    name: str,
    source: QueryNode,
    attribute: str,
    *,
    predicate: Predicate | None = None,
    description: str = "",
) -> Query:
    """``SELECT SUM(attribute) FROM source WHERE predicate``."""
    root = Aggregate(where(source, predicate), AggregateFunction.SUM, attribute, alias="sum")
    return Query(name, root, description)


def aggregate_query(
    name: str,
    function: AggregateFunction,
    source: QueryNode,
    attribute: str | None,
    *,
    predicate: Predicate | None = None,
    description: str = "",
) -> Query:
    """Generic aggregate query constructor."""
    root = Aggregate(
        where(source, predicate), function, attribute, alias=function.value.lower()
    )
    return Query(name, root, description)


def projection_query(
    name: str,
    source: QueryNode,
    attributes: Sequence[str],
    *,
    predicate: Predicate | None = None,
    distinct: bool = True,
    description: str = "",
) -> Query:
    """``SELECT [DISTINCT] attributes FROM source WHERE predicate``."""
    root = Project(where(source, predicate), tuple(attributes), distinct=distinct)
    return Query(name, root, description)

"""Attributes, data types and schemas for the in-memory relational engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.relational.errors import SchemaError, UnknownAttributeError


class DataType(enum.Enum):
    """Supported attribute data types.

    The engine is deliberately small: strings, integers, floats and booleans
    cover every dataset used by the paper (academic program listings, IMDb
    views and the synthetic generator of Section 5.3).
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"

    def coerce(self, value):
        """Coerce ``value`` to this data type.

        ``None`` is passed through unchanged (SQL-style NULL).  Raises
        :class:`SchemaError` when the value cannot be represented.
        """
        if value is None:
            return None
        try:
            if self is DataType.STRING:
                return str(value)
            if self is DataType.INTEGER:
                return int(value)
            if self is DataType.FLOAT:
                return float(value)
            if self is DataType.BOOLEAN:
                if isinstance(value, str):
                    lowered = value.strip().lower()
                    if lowered in {"true", "t", "1", "yes"}:
                        return True
                    if lowered in {"false", "f", "0", "no"}:
                        return False
                    raise ValueError(value)
                return bool(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce {value!r} to {self.value}") from exc
        raise SchemaError(f"unsupported data type {self!r}")

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    @classmethod
    def infer(cls, value) -> "DataType":
        """Infer the data type of a single Python value."""
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.FLOAT
        return cls.STRING

    @classmethod
    def infer_many(cls, values) -> "DataType":
        """Infer one column type from every non-NULL value in a column.

        A column mixing ints and floats promotes to FLOAT (coercing the floats
        to the first-seen int type would silently truncate ``2.5`` to ``2``).
        Other mixes keep the first-seen type, so coercion decides -- matching
        the historical single-value behaviour for every non-numeric column.
        """
        dtype = None
        for value in values:
            if value is None:
                continue
            seen = cls.infer(value)
            if dtype is None:
                dtype = seen
            elif dtype is not seen and {dtype, seen} == {cls.INTEGER, cls.FLOAT}:
                dtype = cls.FLOAT
        return dtype if dtype is not None else cls.STRING


def concat_names(
    left: Sequence[str], right: Sequence[str]
) -> tuple[tuple[str, ...], dict[str, str]]:
    """Join-concatenation name scheme: right-side clashes get ``_r`` suffixes.

    Returns the combined name list plus the rename map of the right side.
    The single source of truth for both :meth:`Schema.concat` (what the
    executor produces) and the SQL binder (what predicates must reference).
    """
    taken = set(left)
    combined = list(left)
    renamed: dict[str, str] = {}
    for name in right:
        out = name
        if name in taken:
            candidate = f"{name}_r"
            counter = 2
            while candidate in taken:
                candidate = f"{name}_r{counter}"
                counter += 1
            out = candidate
        taken.add(out)
        combined.append(out)
        renamed[name] = out
    return tuple(combined), renamed


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation schema."""

    name: str
    dtype: DataType = DataType.STRING

    def __post_init__(self):
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.dtype.value}"


class Schema:
    """An ordered collection of uniquely named attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute | tuple[str, DataType] | str]):
        normalized: list[Attribute] = []
        for item in attributes:
            if isinstance(item, Attribute):
                normalized.append(item)
            elif isinstance(item, tuple):
                name, dtype = item
                normalized.append(Attribute(name, dtype))
            else:
                normalized.append(Attribute(str(item)))
        names = [attr.name for attr in normalized]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes = tuple(normalized)
        self._index = {attr.name: pos for pos, attr in enumerate(self._attributes)}

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(attr) for attr in self._attributes)
        return f"Schema({inner})"

    # -- accessors ----------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes)

    @property
    def dtypes(self) -> tuple[DataType, ...]:
        """Per-attribute data types, positionally aligned with :attr:`names`."""
        return tuple(attr.dtype for attr in self._attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def dtype(self, name: str) -> DataType:
        return self.attribute(name).dtype

    # -- derivation ---------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names`` (in the given order)."""
        return Schema([self.attribute(name) for name in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed according to ``mapping``."""
        return Schema(
            [
                attr.renamed(mapping.get(attr.name, attr.name))
                for attr in self._attributes
            ]
        )

    def extend(self, attributes: Iterable[Attribute]) -> "Schema":
        """Schema with extra attributes appended."""
        return Schema(list(self._attributes) + list(attributes))

    def concat(self, other: "Schema", *, disambiguate: bool = True) -> "Schema":
        """Concatenate two schemas, optionally disambiguating name clashes.

        Clashing attribute names on the right-hand side are suffixed with
        ``_r`` (then ``_r2``, ``_r3`` ... if needed), which mirrors what a
        user would do with SQL aliases.  The rename scheme is shared with the
        SQL binder through :func:`concat_names` so that bound predicates
        always reference the names the executor actually produces.
        """
        if not disambiguate:
            for attr in other:
                if attr.name in self._index:
                    raise SchemaError(
                        f"attribute {attr.name!r} exists on both sides of a join"
                    )
        _, renamed = concat_names(self.names, [attr.name for attr in other])
        right = [attr.renamed(renamed[attr.name]) for attr in other]
        return Schema(list(self._attributes) + right)

    def coerce_row(self, values: Sequence) -> tuple:
        """Coerce a sequence of raw values to the schema's data types."""
        if len(values) != len(self._attributes):
            raise SchemaError(
                f"row has {len(values)} values but schema has {len(self._attributes)} attributes"
            )
        return tuple(
            attr.dtype.coerce(value) for attr, value in zip(self._attributes, values)
        )

    @classmethod
    def infer(cls, records: Sequence[dict]) -> "Schema":
        """Infer a schema from a non-empty list of dictionaries.

        Column types come from *all* values of a column, not just the first
        non-NULL one, so a column holding ``[1, 2.5]`` is FLOAT rather than an
        INTEGER that would truncate ``2.5`` on coercion.
        """
        if not records:
            raise SchemaError("cannot infer a schema from an empty record list")
        names = list(records[0].keys())
        return cls(
            [
                Attribute(name, DataType.infer_many(record.get(name) for record in records))
                for name in names
            ]
        )

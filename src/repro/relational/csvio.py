"""CSV and record-list loading helpers for base relations."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema


def _infer_dtype(values: Sequence[str]) -> DataType:
    """Infer a column type from string cell values (CSV has no types)."""
    non_empty = [value for value in values if value not in ("", None)]
    if not non_empty:
        return DataType.STRING

    def all_match(converter) -> bool:
        for value in non_empty:
            try:
                converter(value)
            except (TypeError, ValueError):
                return False
        return True

    if all_match(int):
        return DataType.INTEGER
    if all_match(float):
        return DataType.FLOAT
    return DataType.STRING


def load_csv(path: str | Path, *, name: str | None = None, schema: Schema | None = None) -> Relation:
    """Load a relation from a CSV file with a header row.

    Types are inferred column-by-column unless an explicit ``schema`` is given;
    empty cells become NULLs.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"CSV file {path} is empty")
    header, *data = rows
    if schema is None:
        columns = list(zip(*data)) if data else [[] for _ in header]
        schema = Schema(
            [Attribute(name_, _infer_dtype(column)) for name_, column in zip(header, columns)]
        )
    relation = Relation(schema, name=name or path.stem)
    for raw in data:
        values = [cell if cell != "" else None for cell in raw]
        relation.append(values)
    return relation


def save_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation:
            writer.writerow(["" if value is None else value for value in row.values])


def relation_from_rows(
    name: str, attribute_names: Sequence[str], rows: Sequence[Sequence], *, dtypes: Sequence[DataType] | None = None
) -> Relation:
    """Build a base relation from positional rows (used by dataset generators)."""
    if dtypes is None:
        records = [dict(zip(attribute_names, row)) for row in rows]
        return Relation.from_records(records, name=name)
    schema = Schema([Attribute(n, d) for n, d in zip(attribute_names, dtypes)])
    relation = Relation(schema, name=name)
    for row in rows:
        relation.append(row)
    return relation

"""CSV/NDJSON and record-list loading helpers for base relations.

CSV is untyped on the wire: types are inferred per column and an empty cell
cannot be told apart from an explicit NULL (both load as None, both save as
``""``).  NDJSON (one JSON object per line) is the typed format: ints, floats,
booleans and nulls survive a round trip, and ``""`` stays a string.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema


def _parses_as(converter, value: str) -> bool:
    # Python's numeric constructors accept "1_0" (= 10); in a CSV cell that
    # spelling is far more likely an identifier than a number literal.
    if "_" in value:
        return False
    try:
        converter(value)
    except (TypeError, ValueError):
        return False
    return True


def _infer_dtype(values: Sequence[str]) -> DataType:
    """Infer a column type from string cell values (CSV has no types)."""
    non_empty = [value for value in values if value not in ("", None)]
    if not non_empty:
        return DataType.STRING
    if all(_parses_as(int, value) for value in non_empty):
        return DataType.INTEGER
    if all(_parses_as(float, value) for value in non_empty):
        return DataType.FLOAT
    return DataType.STRING


def load_csv(path: str | Path, *, name: str | None = None, schema: Schema | None = None) -> Relation:
    """Load a relation from a CSV file with a header row.

    Types are inferred column-by-column unless an explicit ``schema`` is given;
    empty cells become NULLs.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"CSV file {path} is empty")
    header, *data = rows
    if schema is None:
        columns = list(zip(*data)) if data else [[] for _ in header]
        schema = Schema(
            [Attribute(name_, _infer_dtype(column)) for name_, column in zip(header, columns)]
        )
    relation = Relation(schema, name=name or path.stem)
    for raw in data:
        values = [cell if cell != "" else None for cell in raw]
        relation.append(values)
    return relation


def save_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation:
            writer.writerow(["" if value is None else value for value in row.values])


def read_ndjson_records(path: str | Path) -> tuple[list[dict], list[str]]:
    """Parse an NDJSON file into ``(records, column_names)``.

    Blank lines are skipped; every other line must hold one JSON object.
    Column order is first-seen order across all records (records may omit
    keys -- missing keys load as NULL).  Errors carry the file and 1-based
    line number.
    """
    path = Path(path)
    records: list[dict] = []
    columns: list[str] = []
    seen: set[str] = set()
    with path.open() as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: invalid JSON: {exc}") from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: each NDJSON line must be an object, "
                    f"got {type(record).__name__}"
                )
            for key in record:
                if key not in seen:
                    seen.add(key)
                    columns.append(str(key))
            records.append(record)
    if not records:
        raise ValueError(f"NDJSON file {path} is empty")
    for record in records:
        for column in columns:
            record.setdefault(column, None)
    return records, columns


def load_ndjson(
    path: str | Path, *, name: str | None = None, schema: Schema | None = None
) -> Relation:
    """Load a relation from an NDJSON file (one JSON object per line).

    NDJSON is typed at the source, so inference uses the JSON values
    directly (mixed int/float columns promote to float) and an empty string
    stays distinct from an explicit ``null`` -- the distinction CSV cannot
    round-trip.
    """
    path = Path(path)
    records, columns = read_ndjson_records(path)
    if schema is None:
        schema = Schema(
            [
                Attribute(column, DataType.infer_many(r.get(column) for r in records))
                for column in columns
            ]
        )
    return Relation.from_records(records, schema, name=name or path.stem)


def save_ndjson(relation: Relation, path: str | Path) -> None:
    """Write a relation to an NDJSON file, one JSON object per row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for row in relation:
            handle.write(json.dumps(row.as_dict(relation.schema)) + "\n")


def relation_from_rows(
    name: str, attribute_names: Sequence[str], rows: Sequence[Sequence], *, dtypes: Sequence[DataType] | None = None
) -> Relation:
    """Build a base relation from positional rows (used by dataset generators)."""
    if dtypes is None:
        records = [dict(zip(attribute_names, row)) for row in rows]
        return Relation.from_records(records, name=name)
    schema = Schema([Attribute(n, d) for n, d in zip(attribute_names, dtypes)])
    relation = Relation(schema, name=name)
    for row in rows:
        relation.append(row)
    return relation

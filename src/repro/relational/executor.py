"""Query executor with why-provenance tracking.

The executor evaluates the query AST of :mod:`repro.relational.query` against a
:class:`Database` of named base relations.  Every produced row carries the set
of base-row identifiers it derives from, which Stage 1 of Explain3D uses to
construct provenance relations (Definition 2.3).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict

from repro.relational.errors import ExecutionError, SchemaError, UnknownRelationError
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Difference,
    Join,
    Project,
    Query,
    QueryNode,
    Scan,
    Select,
    Union,
)
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, DataType, Schema


class Database:
    """A named collection of base relations."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._relations: dict[str, Relation] = {}
        self.statistics = None  # DatabaseStats, set by analyze()

    def add(self, relation: Relation, name: str | None = None) -> None:
        """Register a base relation (its rows get lineage ids if missing).

        Registering under a name that differs from ``relation.name`` stores a
        shallow copy under the new name instead of renaming the caller's
        object in place -- mutating it would silently change the fingerprint
        (and future lineage ids) of a relation the caller may still be using,
        possibly registered elsewhere.  Any ANALYZE statistics previously
        collected for this name are invalidated (the content may differ); the
        planner falls back to heuristics for it until the next ``analyze()``.
        """
        label = name or relation.name
        if not label:
            raise SchemaError("base relations must have a name")
        if relation.name != label:
            relation = Relation(relation.schema, relation.rows, name=label)
        self._relations[label] = relation
        if self.statistics is not None:
            self.statistics.invalidate(label)

    def remove(self, name: str) -> Relation:
        """Unregister a base relation; returns it.

        Any ANALYZE statistics held under the name are dropped with it --
        leaving them would let the planner cost queries against a relation
        that no longer exists (or, worse, a future one reusing the name).
        """
        try:
            relation = self._relations.pop(name)
        except KeyError:
            raise UnknownRelationError(name, self._relations.keys()) from None
        if self.statistics is not None:
            self.statistics.invalidate(name)
        return relation

    def rename_relation(self, old: str, new: str) -> Relation:
        """Re-register a relation under a new name (copy-on-rename).

        The stored relation is copied with the new name (the caller may hold
        the old object; renaming it in place would change its fingerprint and
        future lineage ids behind their back).  ANALYZE statistics are dropped
        for *both* names: the old name no longer exists, and the new name's
        content produces different lineage ids than whatever was analyzed
        under it before.
        """
        if not new:
            raise SchemaError("base relations must have a name")
        try:
            relation = self._relations.pop(old)
        except KeyError:
            raise UnknownRelationError(old, self._relations.keys()) from None
        renamed = Relation(relation.schema, relation.rows, name=new)
        self._relations[new] = renamed
        if self.statistics is not None:
            self.statistics.invalidate(old)
            self.statistics.invalidate(new)
        return renamed

    def with_relation(self, name: str, relation: Relation, *, statistics=None) -> "Database":
        """A copy-on-write database with one relation replaced.

        The new database shares every other :class:`Relation` object (and
        their cached fingerprints) with this one, so building it is O(1) in
        total row count -- the primitive behind atomic live-update swaps: a
        reader holding the old database keeps a fully consistent pre-delta
        view.  ``statistics`` attaches ready-made
        :class:`~repro.stats.statistics.DatabaseStats` (the incremental
        ANALYZE path); by default the replaced relation's entry is dropped
        from a copy of the current statistics, never mutating the original.
        """
        if name not in self._relations:
            raise UnknownRelationError(name, self._relations.keys())
        if relation.name != name:
            relation = Relation(relation.schema, relation.rows, name=name)
        clone = Database(self.name)
        clone._relations = dict(self._relations)
        clone._relations[name] = relation
        if statistics is not None:
            clone.statistics = statistics
        elif self.statistics is not None:
            from repro.stats.statistics import DatabaseStats

            remaining = {
                label: stats
                for label, stats in self.statistics.relations().items()
                if label != name
            }
            clone.statistics = DatabaseStats(
                remaining, buckets=self.statistics.buckets
            )
        return clone

    def analyze(self, *, buckets: int | None = None, catalog=None):
        """ANALYZE: collect per-relation/per-column statistics for planning.

        Attaches (and returns) a :class:`~repro.stats.statistics.DatabaseStats`
        as ``self.statistics``; the query planner consumes it automatically
        for cost-based join reordering, build-side and join-algorithm
        decisions.  Statistics are advisory -- planned results stay
        fingerprint-identical to the naive interpreter either way.  Pass a
        :class:`~repro.stats.statistics.StatsCatalog` to reuse stats computed
        for identical relation content elsewhere.
        """
        from repro.stats import DEFAULT_BUCKETS, analyze_database

        self.statistics = analyze_database(
            self, buckets=buckets if buckets is not None else DEFAULT_BUCKETS,
            catalog=catalog,
        )
        return self.statistics

    def add_records(self, name: str, records, schema: Schema | None = None) -> Relation:
        relation = Relation.from_records(records, schema, name=name)
        self.add(relation, name)
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, self._relations.keys()) from None

    def relations(self) -> dict[str, Relation]:
        return dict(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def fingerprint(self) -> str:
        """A stable content hash over all base relations (names included).

        Relation names participate because provenance identifiers embed them:
        the same rows registered under a different name produce different
        lineage ids and hence different downstream artifacts.
        """
        digest = hashlib.sha256()
        for name in sorted(self._relations):
            digest.update(name.encode())
            digest.update(self._relations[name].fingerprint().encode())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {name: len(rel) for name, rel in self._relations.items()}
        return f"Database({self.name}, {sizes})"


# ---------------------------------------------------------------------------
# Node evaluation
# ---------------------------------------------------------------------------

def _eval_scan(node: Scan, db: Database) -> Relation:
    base = db.relation(node.relation)
    result = Relation(base.schema, name=node.relation)
    for index, row in enumerate(base):
        lineage = row.lineage or frozenset({f"{node.relation}:{index}"})
        result.append_row(Row(row.values, lineage))
    return result


def _eval_select(node: Select, db: Database) -> Relation:
    child = evaluate(node.child, db)
    return child.select(node.predicate)


def _eval_project(node: Project, db: Database) -> Relation:
    child = evaluate(node.child, db)
    projected = child.project(list(node.attributes))
    if node.distinct:
        projected = projected.distinct()
    return projected


def _eval_join(node: Join, db: Database) -> Relation:
    left = evaluate(node.left, db)
    right = evaluate(node.right, db)
    schema = left.schema.concat(right.schema)
    result = Relation(schema)

    # Hash join on the first equality pair when available; nested loop otherwise.
    pairs = list(node.on)
    if pairs:
        probe_attr, build_attr = pairs[0]
        buckets: dict[object, list[Row]] = defaultdict(list)
        build_index = right.schema.index(build_attr)
        for row in right:
            buckets[row.values[build_index]].append(row)
        probe_index = left.schema.index(probe_attr)
        candidates = (
            (lrow, rrow)
            for lrow in left
            for rrow in buckets.get(lrow.values[probe_index], ())
        )
    else:
        candidates = ((lrow, rrow) for lrow in left for rrow in right)

    remaining = pairs[1:] if pairs else []
    left_names = left.schema.names
    for lrow, rrow in candidates:
        ok = True
        for left_attr, right_attr in remaining:
            lval = lrow.values[left.schema.index(left_attr)]
            rval = rrow.values[right.schema.index(right_attr)]
            if lval is None or rval is None or lval != rval:
                ok = False
                break
        if not ok:
            continue
        combined_values = lrow.values + rrow.values
        if node.condition is not None:
            record = dict(zip(schema.names, combined_values))
            # also expose original left names for predicates written against them
            record.update(dict(zip(left_names, lrow.values)))
            if not node.condition(record):
                continue
        result.append_row(Row(combined_values, lrow.lineage | rrow.lineage))
    return result


def _eval_union(node: Union, db: Database) -> Relation:
    if not node.inputs:
        raise ExecutionError("union requires at least one input")
    relations = [evaluate(child, db) for child in node.inputs]
    result = relations[0]
    for other in relations[1:]:
        result = result.union(other)
    return result


def _eval_difference(node: Difference, db: Database) -> Relation:
    left = evaluate(node.left, db)
    right = evaluate(node.right, db)
    key_indices_left = [left.schema.index(name) for name in node.on]
    key_indices_right = [right.schema.index(name) for name in node.on]
    right_keys = {
        tuple(row.values[i] for i in key_indices_right) for row in right
    }
    result = Relation(left.schema, name=left.name)
    for row in left:
        key = tuple(row.values[i] for i in key_indices_left)
        if key not in right_keys:
            result.append_row(row)
    return result


def aggregate_columns(
    node: Aggregate,
    schema: Schema,
    columns: list[list],
    lineages: list,
) -> list[Row]:
    """Aggregate column vectors (conforming to ``schema``) per the node's spec.

    The single source of truth for aggregation semantics -- group order is
    first-seen, lineage is unioned per group, an empty non-COUNT scalar
    aggregate yields an explicit NULL row.  The naive interpreter reaches it
    through the :func:`aggregate_rows` transposing wrapper; the planner's
    columnar ``AggregateExec`` calls it directly, so the two paths cannot
    drift.
    """
    function = node.function
    count = len(lineages)
    value_column = (
        columns[schema.index(node.attribute)] if node.attribute is not None else None
    )

    def compute(positions: list[int]) -> tuple[float, frozenset]:
        lineage = (
            frozenset().union(*(lineages[i] for i in positions))
            if positions
            else frozenset()
        )
        if function is AggregateFunction.COUNT:
            if value_column is None:
                return float(len(positions)), lineage
            return (
                float(sum(1 for i in positions if value_column[i] is not None)),
                lineage,
            )
        return function.combine([value_column[i] for i in positions]), lineage

    if node.group_by:
        group_columns = [columns[schema.index(name)] for name in node.group_by]
        groups: dict[tuple, list[int]] = defaultdict(list)
        order: list[tuple] = []
        for position in range(count):
            key = tuple(column[position] for column in group_columns)
            if key not in groups:
                order.append(key)
            groups[key].append(position)
        out: list[Row] = []
        for key in order:
            value, lineage = compute(groups[key])
            out.append(Row(key + (value,), lineage))
        return out

    if count == 0 and function is not AggregateFunction.COUNT:
        # SQL would return NULL; we surface it as an explicit empty aggregate.
        return [Row((None,), frozenset())]
    value, lineage = compute(list(range(count)))
    return [Row((value,), lineage)]


def aggregate_rows(node: Aggregate, schema: Schema, rows: list[Row]) -> list[Row]:
    """Row-tuple wrapper over :func:`aggregate_columns` (same semantics)."""
    if rows:
        columns = [list(column) for column in zip(*(row.values for row in rows))]
    else:
        columns = [[] for _ in range(len(schema))]
    return aggregate_columns(node, schema, columns, [row.lineage for row in rows])


def _eval_aggregate(node: Aggregate, db: Database) -> Relation:
    child = evaluate(node.child, db)
    out_attr = Attribute(node.alias, DataType.FLOAT)
    if node.group_by:
        schema = child.schema.project(list(node.group_by)).extend([out_attr])
    else:
        schema = Schema([out_attr])
    result = Relation(schema)
    for row in aggregate_rows(node, child.schema, list(child)):
        result.append_row(row)
    return result


_DISPATCH = {
    Scan: _eval_scan,
    Select: _eval_select,
    Project: _eval_project,
    Join: _eval_join,
    Union: _eval_union,
    Difference: _eval_difference,
    Aggregate: _eval_aggregate,
}


def evaluate(node: QueryNode, db: Database) -> Relation:
    """Evaluate a query AST node against a database."""
    handler = _DISPATCH.get(type(node))
    if handler is None:
        raise ExecutionError(f"no executor for node type {type(node).__name__}")
    return handler(node, db)


def execute(query: Query, db: Database, *, planner: str = "naive") -> Relation:
    """Execute a named query and return its result relation.

    ``planner="naive"`` walks the AST with this module's reference
    interpreter; ``planner="optimized"`` plans the query through
    :mod:`repro.plan` (rule-based rewrites, hash joins, batch operators) and
    executes the physical plan.  Both paths are fingerprint-identical
    (rows, order, lineage) -- the planner test suite asserts it continuously.
    """
    if planner == "optimized":
        from repro.plan import plan_query

        return plan_query(query, db).execute()
    if planner != "naive":
        raise ExecutionError(f"unknown planner {planner!r}; use 'naive' or 'optimized'")
    return evaluate(query.root, db)


def scalar_result(query: Query, db: Database, *, planner: str = "naive") -> float | None:
    """Execute an aggregate query and return its single scalar value."""
    result = execute(query, db, planner=planner)
    if len(result) != 1 or len(result.schema) != 1:
        raise ExecutionError(
            f"query {query.name} is not a scalar aggregate (got {len(result)} rows)"
        )
    return result[0].values[0]

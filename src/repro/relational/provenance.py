"""Provenance relations (Definition 2.3).

Given a query ``Q = pi_o sigma_C(X)`` over a database, the provenance relation
``P(A1, ..., Ak, I)`` contains one tuple per row of ``sigma_C(X)`` (the
evaluated inner expression after filtering) together with its *impact* ``I``:

* ``I = 1`` for non-aggregate queries and COUNT;
* ``I = pi_o(t)`` (the aggregated attribute's value) for SUM/AVG/MAX/MIN.

The impact measures the tuple's statistical contribution to the query result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.relational.errors import ExecutionError
from repro.relational.executor import Database, evaluate
from repro.relational.query import AggregateFunction, Query


@dataclass(frozen=True)
class ProvenanceTuple:
    """A single tuple of a provenance relation.

    ``key`` is a stable identifier within the provenance relation (``"P1:3"``),
    ``values`` maps attribute names to values, ``impact`` is the tuple's
    contribution to the query result, and ``lineage`` points back to the base
    rows it derives from.
    """

    key: str
    values: dict
    impact: float
    lineage: frozenset = field(default_factory=frozenset)

    def value(self, attribute: str):
        return self.values.get(attribute)

    def with_impact(self, impact: float) -> "ProvenanceTuple":
        return ProvenanceTuple(self.key, dict(self.values), impact, self.lineage)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProvenanceTuple({self.key}, I={self.impact}, {self.values})"


class ProvenanceRelation:
    """The provenance relation ``P`` of a query (Definition 2.3)."""

    def __init__(
        self,
        query: Query,
        attributes: Sequence[str],
        tuples: Sequence[ProvenanceTuple],
        *,
        label: str = "P",
    ):
        self.query = query
        self.attributes = tuple(attributes)
        self.tuples = list(tuples)
        self.label = label

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[ProvenanceTuple]:
        return iter(self.tuples)

    def __getitem__(self, index: int) -> ProvenanceTuple:
        return self.tuples[index]

    def total_impact(self) -> float:
        return sum(t.impact for t in self.tuples)

    def by_key(self) -> dict[str, ProvenanceTuple]:
        return {t.key: t for t in self.tuples}

    def values(self, attribute: str) -> list:
        return [t.value(attribute) for t in self.tuples]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProvenanceRelation({self.label}, query={self.query.name}, "
            f"{len(self.tuples)} tuples, total impact {self.total_impact():g})"
        )


def _impact_for(query: Query, record: dict) -> float:
    """Impact of a provenance tuple for ``query`` (Definition 2.3)."""
    function = query.aggregate_function
    if function is None or function is AggregateFunction.COUNT:
        return 1.0
    attribute = query.aggregate_attribute
    value = record.get(attribute)
    if value is None:
        return 0.0
    try:
        # Strings holding numbers are coerced (SQL-style implicit cast), so
        # SUM/AVG/... over generic "info" columns behave like the executor.
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ExecutionError(
            f"aggregate attribute {attribute!r} of query {query.name} has a non-numeric "
            f"value {value!r}"
        ) from exc


def provenance_relation(
    query: Query,
    db: Database,
    *,
    label: str | None = None,
    planner: str = "optimized",
    plan=None,
) -> ProvenanceRelation:
    """Derive the provenance relation of ``query`` over ``db``.

    The inner expression ``sigma_C(X)`` is the query with its outermost
    projection/aggregation stripped; every surviving row becomes a provenance
    tuple with the appropriate impact.

    Stage 1 executes this for every request, so by default the inner
    expression runs through the query planner (:mod:`repro.plan`); pass
    ``planner="naive"`` for the reference interpreter (both are
    fingerprint-identical, lineage included).  A prebuilt ``plan`` (e.g. the
    service layer's cached :class:`~repro.plan.PhysicalPlan` for this inner
    expression) skips planning entirely.
    """
    label = label or f"P[{query.name}]"
    inner = query.inner
    if plan is not None:
        relation = plan.execute()
    elif planner == "optimized":
        from repro.plan import plan_node

        relation = plan_node(inner, db).execute()
    elif planner == "naive":
        relation = evaluate(inner, db)
    else:
        raise ExecutionError(
            f"unknown planner {planner!r}; use 'naive' or 'optimized'"
        )

    tuples = []
    names = relation.schema.names
    for index, row in enumerate(relation):
        record = dict(zip(names, row.values))
        impact = _impact_for(query, record)
        tuples.append(
            ProvenanceTuple(
                key=f"{label}:{index}",
                values=record,
                impact=impact,
                lineage=row.lineage,
            )
        )
    return ProvenanceRelation(query, names, tuples, label=label)

"""Exception hierarchy for the relational substrate."""


class RelationalError(Exception):
    """Base class for all errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """Raised when a schema is malformed or two schemas are incompatible."""


class UnknownAttributeError(SchemaError):
    """Raised when an attribute name is not part of a schema."""

    def __init__(self, attribute, schema_names):
        self.attribute = attribute
        self.schema_names = tuple(schema_names)
        super().__init__(
            f"unknown attribute {attribute!r}; schema has {list(self.schema_names)}"
        )


class UnknownRelationError(RelationalError):
    """Raised when a query references a relation not present in the database."""

    def __init__(self, relation, known):
        self.relation = relation
        self.known = tuple(known)
        super().__init__(
            f"unknown relation {relation!r}; database has {list(self.known)}"
        )


class ExecutionError(RelationalError):
    """Raised when a query cannot be evaluated (type errors, empty aggregates...)."""

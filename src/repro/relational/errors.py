"""Exception hierarchy for the relational substrate."""


class RelationalError(Exception):
    """Base class for all errors raised by :mod:`repro.relational`."""


class SchemaError(RelationalError):
    """Raised when a schema is malformed or two schemas are incompatible."""


class UnknownAttributeError(SchemaError):
    """Raised when an attribute name is not part of a schema."""

    def __init__(self, attribute, schema_names):
        self.attribute = attribute
        self.schema_names = tuple(schema_names)
        super().__init__(
            f"unknown attribute {attribute!r}; schema has {list(self.schema_names)}"
        )


class UnknownRelationError(RelationalError):
    """Raised when a query references a relation not present in the database."""

    def __init__(self, relation, known):
        self.relation = relation
        self.known = tuple(known)
        super().__init__(
            f"unknown relation {relation!r}; database has {list(self.known)}"
        )


class ExecutionError(RelationalError):
    """Raised when a query cannot be evaluated (type errors, empty aggregates...)."""


class EmptyAggregateError(ExecutionError):
    """SUM/AVG/MIN/MAX over an input with no non-NULL values.

    A well-formed query over unlucky data, not a programming error: the
    service layer maps it to a typed 400 envelope (``path`` is a JSON pointer
    to the offending query field when the context is known) instead of a
    generic 500.
    """

    def __init__(self, function: str, *, path: str = ""):
        self.function = str(function)
        self.path = path
        super().__init__(f"{self.function} over an empty input is undefined")

"""Edge re-weighting for the graph partitioning problem (Section 4).

Cutting a high-probability tuple match hurts the EXP-3D objective far more
than cutting several low-probability matches, so the paper re-weights edges
before partitioning:

* ``w = p * R``   when ``p >= theta_h`` (strongly discourage cutting),
* ``w = p / R``   when ``p <= theta_l`` (cheap to cut),
* ``w = p``       otherwise.

The paper's defaults are ``theta_l = 0.1``, ``theta_h = 0.9``, ``R = 100``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WeightingParams:
    """Parameters of the edge re-weighting scheme."""

    theta_low: float = 0.1
    theta_high: float = 0.9
    reward: float = 100.0

    def __post_init__(self):
        if not 0.0 <= self.theta_low < self.theta_high <= 1.0:
            raise ValueError(
                f"thresholds must satisfy 0 <= theta_low < theta_high <= 1, "
                f"got {self.theta_low}, {self.theta_high}"
            )
        if self.reward <= 1.0:
            raise ValueError(f"reward factor R must exceed 1, got {self.reward}")


def adjust_weight(probability: float, params: WeightingParams = WeightingParams()) -> float:
    """The partitioning weight of an edge with match probability ``probability``."""
    if probability >= params.theta_high:
        return probability * params.reward
    if probability <= params.theta_low:
        return probability / params.reward
    return probability

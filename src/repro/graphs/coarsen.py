"""Coarsening: pre-partitioning (Algorithm 2) and heavy-edge matching.

Algorithm 2 merges tuples connected by high-probability matches into
supernodes before running the graph partitioner.  Those matches must never be
cut (their adjusted weight is ``p * R``), so collapsing them shrinks the
partitioning problem drastically -- the paper reports a 200x speedup on 10K
tuples -- without affecting partition quality.

Heavy-edge matching is the classic multilevel coarsening step used by the
partitioner itself when the (pre-partitioned) graph is still large.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graphs.bipartite import GraphNode, MatchGraph, Side
from repro.graphs.weighting import WeightingParams, adjust_weight


@dataclass
class SuperNode:
    """A merged group of bipartite nodes (Algorithm 2, MergeTuples)."""

    index: int
    left_keys: set[str] = field(default_factory=set)
    right_keys: set[str] = field(default_factory=set)

    @property
    def size(self) -> int:
        """Number of original tuples in the supernode (the balancing measure)."""
        return len(self.left_keys) + len(self.right_keys)

    def add(self, node: GraphNode) -> None:
        if node.side is Side.LEFT:
            self.left_keys.add(node.key)
        else:
            self.right_keys.add(node.key)


@dataclass
class CoarseGraph:
    """The simplified graph ``G_c = (C1, C2, M_c)`` produced by Algorithm 2."""

    supernodes: list[SuperNode]
    edges: dict[tuple[int, int], float]
    node_of: dict[GraphNode, int]

    @property
    def num_nodes(self) -> int:
        return len(self.supernodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def adjacency(self) -> list[dict[int, float]]:
        """Symmetric adjacency lists (neighbor supernode -> total weight)."""
        adjacency: list[dict[int, float]] = [dict() for _ in self.supernodes]
        for (a, b), weight in self.edges.items():
            adjacency[a][b] = adjacency[a].get(b, 0.0) + weight
            adjacency[b][a] = adjacency[b].get(a, 0.0) + weight
        return adjacency

    def sizes(self) -> list[int]:
        return [supernode.size for supernode in self.supernodes]


def _high_probability_component(
    graph: MatchGraph, start: GraphNode, theta_high: float, visited: set[GraphNode]
) -> list[GraphNode]:
    """FindHighProbTuplesDFS: nodes reachable from ``start`` via edges with p >= theta_high."""
    stack = [start]
    component = []
    visited.add(start)
    while stack:
        node = stack.pop()
        component.append(node)
        for edge in graph.edges_of(node):
            if edge.probability < theta_high:
                continue
            neighbor = edge.right_node if node.side is Side.LEFT else edge.left_node
            if neighbor not in visited:
                visited.add(neighbor)
                stack.append(neighbor)
    return component


def prepartition(graph: MatchGraph, params: WeightingParams = WeightingParams()) -> CoarseGraph:
    """Algorithm 2: merge high-probability-connected tuples into supernodes.

    Runs in ``O(|T1| + |T2| + |M_tuple|)``: one DFS sweep to form supernodes,
    one pass over the remaining matches to accumulate (re-weighted) edge
    weights between supernodes.
    """
    visited: set[GraphNode] = set()
    supernodes: list[SuperNode] = []
    node_of: dict[GraphNode, int] = {}

    # Lines 2-7: merge tuples connected by high-probability matches.
    for node in graph.nodes():
        if node in visited:
            continue
        component = _high_probability_component(graph, node, params.theta_high, visited)
        supernode = SuperNode(index=len(supernodes))
        for member in component:
            supernode.add(member)
            node_of[member] = supernode.index
        supernodes.append(supernode)

    # Lines 8-10: accumulate edge weights between distinct supernodes.
    edges: dict[tuple[int, int], float] = {}
    for edge in graph.edges:
        a = node_of[edge.left_node]
        b = node_of[edge.right_node]
        if a == b:
            continue  # internal to a supernode: can never be cut
        key = (a, b) if a < b else (b, a)
        edges[key] = edges.get(key, 0.0) + adjust_weight(edge.probability, params)

    return CoarseGraph(supernodes, edges, node_of)


def heavy_edge_matching(
    adjacency: list[dict[int, float]],
    sizes: list[float],
    *,
    max_merged_size: float,
) -> list[int]:
    """One level of heavy-edge-matching coarsening.

    Returns ``coarse_id[i]`` for every node ``i``.  Each node is matched with
    its heaviest unmatched neighbour, provided the merged size stays within
    ``max_merged_size`` (so coarsening never creates nodes that cannot fit in
    a partition).
    """
    n = len(adjacency)
    matched = [False] * n
    coarse_of = [-1] * n
    next_id = 0

    # Visit nodes in ascending degree order: low-degree nodes have fewer
    # chances to be matched later, the classic METIS heuristic.
    order = sorted(range(n), key=lambda i: len(adjacency[i]))
    for node in order:
        if matched[node]:
            continue
        best_neighbor = -1
        best_weight = 0.0
        for neighbor, weight in adjacency[node].items():
            if matched[neighbor] or neighbor == node:
                continue
            if sizes[node] + sizes[neighbor] > max_merged_size:
                continue
            if weight > best_weight:
                best_weight = weight
                best_neighbor = neighbor
        matched[node] = True
        coarse_of[node] = next_id
        if best_neighbor >= 0:
            matched[best_neighbor] = True
            coarse_of[best_neighbor] = next_id
        next_id += 1
    return coarse_of


def contract(
    adjacency: list[dict[int, float]],
    sizes: list[float],
    coarse_of: list[int],
) -> tuple[list[dict[int, float]], list[float]]:
    """Contract a graph according to a coarse-node assignment."""
    num_coarse = max(coarse_of) + 1 if coarse_of else 0
    coarse_adjacency: list[dict[int, float]] = [dict() for _ in range(num_coarse)]
    coarse_sizes = [0.0] * num_coarse
    for node, coarse in enumerate(coarse_of):
        coarse_sizes[coarse] += sizes[node]
        for neighbor, weight in adjacency[node].items():
            coarse_neighbor = coarse_of[neighbor]
            if coarse_neighbor == coarse:
                continue
            coarse_adjacency[coarse][coarse_neighbor] = (
                coarse_adjacency[coarse].get(coarse_neighbor, 0.0) + weight
            )
    return coarse_adjacency, coarse_sizes

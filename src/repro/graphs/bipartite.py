"""The bipartite match graph ``G = (T1, T2, M_tuple)``."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.matching.tuple_matching import TupleMapping, TupleMatch


class Side(enum.Enum):
    """Which canonical relation a node belongs to."""

    LEFT = "L"
    RIGHT = "R"

    def other(self) -> "Side":
        return Side.RIGHT if self is Side.LEFT else Side.LEFT


@dataclass(frozen=True)
class GraphNode:
    """A node of the bipartite graph: a canonical tuple on one side."""

    side: Side
    key: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.side.value}:{self.key}"


@dataclass(frozen=True)
class GraphEdge:
    """An edge of the bipartite graph: a probabilistic tuple match."""

    left_key: str
    right_key: str
    probability: float

    @property
    def left_node(self) -> GraphNode:
        return GraphNode(Side.LEFT, self.left_key)

    @property
    def right_node(self) -> GraphNode:
        return GraphNode(Side.RIGHT, self.right_key)


class MatchGraph:
    """Bipartite graph over left/right canonical tuple keys with match edges.

    Nodes without any incident edge are kept: they correspond to tuples that
    can only be explained as provenance-based explanations, and they must
    still be assigned to a partition.
    """

    def __init__(
        self,
        left_keys: Iterable[str],
        right_keys: Iterable[str],
        mapping: TupleMapping | Iterable[TupleMatch] = (),
    ):
        self.left_keys = list(dict.fromkeys(left_keys))
        self.right_keys = list(dict.fromkeys(right_keys))
        self._left_set = set(self.left_keys)
        self._right_set = set(self.right_keys)
        self.edges: list[GraphEdge] = []
        self._left_adjacency: dict[str, list[GraphEdge]] = {key: [] for key in self.left_keys}
        self._right_adjacency: dict[str, list[GraphEdge]] = {key: [] for key in self.right_keys}
        for match in mapping:
            self.add_edge(match.left_key, match.right_key, match.probability)

    # -- construction -------------------------------------------------------------
    def add_edge(self, left_key: str, right_key: str, probability: float) -> None:
        if left_key not in self._left_set:
            self.left_keys.append(left_key)
            self._left_set.add(left_key)
            self._left_adjacency[left_key] = []
        if right_key not in self._right_set:
            self.right_keys.append(right_key)
            self._right_set.add(right_key)
            self._right_adjacency[right_key] = []
        edge = GraphEdge(left_key, right_key, probability)
        self.edges.append(edge)
        self._left_adjacency[left_key].append(edge)
        self._right_adjacency[right_key].append(edge)

    # -- accessors ----------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.left_keys) + len(self.right_keys)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def nodes(self) -> Iterator[GraphNode]:
        for key in self.left_keys:
            yield GraphNode(Side.LEFT, key)
        for key in self.right_keys:
            yield GraphNode(Side.RIGHT, key)

    def edges_of(self, node: GraphNode) -> Sequence[GraphEdge]:
        if node.side is Side.LEFT:
            return self._left_adjacency.get(node.key, ())
        return self._right_adjacency.get(node.key, ())

    def neighbors(self, node: GraphNode) -> list[GraphNode]:
        if node.side is Side.LEFT:
            return [edge.right_node for edge in self._left_adjacency.get(node.key, ())]
        return [edge.left_node for edge in self._right_adjacency.get(node.key, ())]

    def degree(self, node: GraphNode) -> int:
        return len(self.edges_of(node))

    def subgraph(self, left_keys: set[str], right_keys: set[str]) -> "MatchGraph":
        """Induced subgraph over a subset of left/right keys."""
        sub = MatchGraph(
            [key for key in self.left_keys if key in left_keys],
            [key for key in self.right_keys if key in right_keys],
        )
        for edge in self.edges:
            if edge.left_key in left_keys and edge.right_key in right_keys:
                sub.add_edge(edge.left_key, edge.right_key, edge.probability)
        return sub

    def to_mapping(self) -> TupleMapping:
        """The edges as a :class:`TupleMapping` (used to slice M_tuple per partition)."""
        return TupleMapping(
            TupleMatch(edge.left_key, edge.right_key, edge.probability) for edge in self.edges
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MatchGraph({len(self.left_keys)} left, {len(self.right_keys)} right, "
            f"{len(self.edges)} edges)"
        )

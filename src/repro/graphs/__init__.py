"""Graph substrate for the smart-partitioning optimizer (Section 4).

The bipartite graph formed by canonical tuples and their probabilistic matches
is the input to the partitioning optimization.  This subpackage provides:

* :mod:`repro.graphs.bipartite` -- the match graph and conversions;
* :mod:`repro.graphs.components` -- connected components (the "free" split);
* :mod:`repro.graphs.weighting` -- the paper's edge re-weighting that rewards
  high-probability matches and penalizes low-probability ones;
* :mod:`repro.graphs.coarsen` -- Algorithm 2 (pre-partitioning by merging
  nodes connected by high-probability matches) and heavy-edge-matching
  coarsening for the multilevel partitioner;
* :mod:`repro.graphs.partitioner` / :mod:`repro.graphs.refine` -- a multilevel
  balanced min-edge-cut partitioner (Problem 2), standing in for METIS;
* :mod:`repro.graphs.smart_partition` -- Algorithm 3, gluing the above into
  bounded-size sub-problems of canonical tuples.
"""

from repro.graphs.bipartite import MatchGraph, Side
from repro.graphs.components import connected_components
from repro.graphs.weighting import WeightingParams, adjust_weight
from repro.graphs.coarsen import CoarseGraph, SuperNode, prepartition
from repro.graphs.partitioner import GraphPartitioner, Partition, WeightedGraph
from repro.graphs.refine import refine_partition
from repro.graphs.smart_partition import SmartPartitioner, TuplePartition

__all__ = [
    "Side",
    "MatchGraph",
    "connected_components",
    "WeightingParams",
    "adjust_weight",
    "SuperNode",
    "CoarseGraph",
    "prepartition",
    "WeightedGraph",
    "Partition",
    "GraphPartitioner",
    "refine_partition",
    "SmartPartitioner",
    "TuplePartition",
]

"""A multilevel balanced min-edge-cut graph partitioner (Problem 2).

This module plays the role METIS/hMETIS play in the paper: partition a
node-weighted, edge-weighted graph into ``k`` parts of bounded size
(``L_max``) while minimizing the total weight of cut edges.  The algorithm is
the standard multilevel scheme:

1. **Coarsen** by heavy-edge matching until the graph is small;
2. **Initial partition** with a greedy BFS-growth / first-fit-decreasing
   assignment respecting the size bound;
3. **Uncoarsen** level by level, projecting the assignment and running
   Kernighan–Lin style boundary refinement at each level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.graphs.coarsen import contract, heavy_edge_matching
from repro.graphs.refine import cut_weight, refine_partition


@dataclass
class WeightedGraph:
    """A simple undirected weighted graph with node sizes."""

    adjacency: list[dict[int, float]]
    sizes: list[float]

    def __post_init__(self):
        if len(self.adjacency) != len(self.sizes):
            raise ValueError("adjacency and sizes must have the same length")

    @property
    def num_nodes(self) -> int:
        return len(self.adjacency)

    @property
    def total_size(self) -> float:
        return sum(self.sizes)

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: dict[tuple[int, int], float], sizes: Sequence[float] | None = None
    ) -> "WeightedGraph":
        adjacency: list[dict[int, float]] = [dict() for _ in range(num_nodes)]
        for (a, b), weight in edges.items():
            if a == b:
                continue
            adjacency[a][b] = adjacency[a].get(b, 0.0) + weight
            adjacency[b][a] = adjacency[b].get(a, 0.0) + weight
        if sizes is None:
            sizes = [1.0] * num_nodes
        return cls(adjacency, list(sizes))


@dataclass
class Partition:
    """A partition assignment together with its quality metrics."""

    assignment: list[int]
    num_parts: int
    cut: float
    part_sizes: list[float]

    def members(self) -> list[list[int]]:
        groups: list[list[int]] = [[] for _ in range(self.num_parts)]
        for node, part in enumerate(self.assignment):
            groups[part].append(node)
        return groups

    @property
    def max_part_size(self) -> float:
        return max(self.part_sizes) if self.part_sizes else 0.0


class GraphPartitioner:
    """Multilevel balanced min-cut partitioner."""

    def __init__(self, *, coarsen_threshold: int = 200, max_levels: int = 20):
        self.coarsen_threshold = coarsen_threshold
        self.max_levels = max_levels

    # -- initial partitioning -----------------------------------------------------
    @staticmethod
    def _initial_partition(
        adjacency: Sequence[dict[int, float]],
        sizes: Sequence[float],
        num_parts: int,
        max_part_size: float,
    ) -> list[int]:
        """Greedy BFS growth: grow each part around unassigned seed nodes.

        Nodes are considered in descending size order (first-fit decreasing),
        and each part keeps absorbing the most strongly connected unassigned
        neighbour.  Growth stops at the *balanced target size*
        (``total / num_parts``), not at ``max_part_size``: stopping early
        leaves slack for the leftover assignment and keeps the refinement pass
        able to move boundary nodes without violating the size bound.
        """
        n = len(adjacency)
        assignment = [-1] * n
        part_sizes = [0.0] * num_parts
        total_size = float(sum(sizes))
        target_size = min(max_part_size, math.ceil(total_size / num_parts))
        order = sorted(range(n), key=lambda node: sizes[node], reverse=True)

        for seed in order:
            if assignment[seed] != -1:
                continue
            # Choose the least-loaded part that can take the seed.
            candidates = sorted(range(num_parts), key=lambda part: part_sizes[part])
            target = None
            for part in candidates:
                if part_sizes[part] + sizes[seed] <= max_part_size:
                    target = part
                    break
            if target is None:
                # The seed alone exceeds every remaining budget; put it in the
                # least-loaded part (the caller's L_max was infeasible).
                target = candidates[0]
            # Grow the part around the seed up to the balanced target size.
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                if assignment[node] != -1:
                    continue
                if part_sizes[target] + sizes[node] > target_size and node != seed:
                    continue
                assignment[node] = target
                part_sizes[target] += sizes[node]
                neighbors = sorted(
                    (
                        neighbor
                        for neighbor in adjacency[node]
                        if assignment[neighbor] == -1
                    ),
                    key=lambda neighbor: adjacency[node][neighbor],
                )
                frontier.extend(neighbors)

        # Any still-unassigned nodes (disconnected, size-limited) go to the
        # least-loaded part that still has room, or the least-loaded overall.
        for node in range(n):
            if assignment[node] == -1:
                candidates = sorted(range(num_parts), key=lambda part: part_sizes[part])
                target = next(
                    (
                        part
                        for part in candidates
                        if part_sizes[part] + sizes[node] <= max_part_size
                    ),
                    candidates[0],
                )
                assignment[node] = target
                part_sizes[target] += sizes[node]
        return assignment

    # -- public API ---------------------------------------------------------------
    def partition(self, graph: WeightedGraph, num_parts: int, max_part_size: float) -> Partition:
        """Partition ``graph`` into ``num_parts`` parts of size at most ``max_part_size``."""
        if num_parts < 1:
            raise ValueError("num_parts must be at least 1")
        if num_parts == 1 or graph.num_nodes <= 1:
            assignment = [0] * graph.num_nodes
            return self._finalize(graph, assignment, max(num_parts, 1))

        # Phase 1: multilevel coarsening.
        levels: list[tuple[list[dict[int, float]], list[float], list[int]]] = []
        adjacency = graph.adjacency
        sizes = list(graph.sizes)
        # Cap coarse-node sizes at half the partition budget so that the
        # coarsest graph can still be bin-packed within L_max (over-coarsening
        # would otherwise force oversized partitions).
        max_merged_size = max(1.0, max_part_size / 2.0)
        for _ in range(self.max_levels):
            if len(adjacency) <= max(self.coarsen_threshold, 2 * num_parts):
                break
            coarse_of = heavy_edge_matching(adjacency, sizes, max_merged_size=max_merged_size)
            if max(coarse_of) + 1 >= len(adjacency):
                break  # no progress
            levels.append((adjacency, sizes, coarse_of))
            adjacency, sizes = contract(adjacency, sizes, coarse_of)

        # Phase 2: initial partition of the coarsest graph.
        assignment = self._initial_partition(adjacency, sizes, num_parts, max_part_size)
        assignment = refine_partition(adjacency, sizes, assignment, num_parts, max_part_size)

        # Phase 3: uncoarsen and refine.
        for fine_adjacency, fine_sizes, coarse_of in reversed(levels):
            assignment = [assignment[coarse_of[node]] for node in range(len(fine_adjacency))]
            assignment = refine_partition(
                fine_adjacency, fine_sizes, assignment, num_parts, max_part_size
            )

        return self._finalize(graph, assignment, num_parts)

    @staticmethod
    def _finalize(graph: WeightedGraph, assignment: list[int], num_parts: int) -> Partition:
        part_sizes = [0.0] * num_parts
        for node, part in enumerate(assignment):
            part_sizes[part] += graph.sizes[node]
        return Partition(
            assignment=assignment,
            num_parts=num_parts,
            cut=cut_weight(graph.adjacency, assignment),
            part_sizes=part_sizes,
        )

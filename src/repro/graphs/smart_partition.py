"""The smart-partitioning algorithm (Algorithm 3).

Given the bipartite match graph, the smart partitioner

1. runs the pre-partitioning step (Algorithm 2) to merge tuples connected by
   high-probability matches into supernodes,
2. partitions the resulting coarse graph with the balanced min-cut
   partitioner of :mod:`repro.graphs.partitioner`, and
3. expands each coarse partition back into a set of left/right canonical
   tuple keys.

The number of partitions follows the paper's experiments: ``k = ceil((|T1| +
|T2|) / batch_size)`` for a fixed batch size, with ``L_max = batch_size``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.graphs.bipartite import MatchGraph
from repro.graphs.coarsen import prepartition
from repro.graphs.components import connected_components
from repro.graphs.partitioner import GraphPartitioner, WeightedGraph
from repro.graphs.weighting import WeightingParams


@dataclass(frozen=True)
class TuplePartition:
    """One sub-problem: the canonical tuple keys assigned to a partition."""

    index: int
    left_keys: frozenset[str]
    right_keys: frozenset[str]

    @property
    def size(self) -> int:
        return len(self.left_keys) + len(self.right_keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TuplePartition(#{self.index}, {len(self.left_keys)}+{len(self.right_keys)} tuples)"


@dataclass
class SmartPartitionResult:
    """Partitions plus diagnostics about the partitioning run."""

    partitions: list[TuplePartition]
    num_supernodes: int = 0
    cut_weight: float = 0.0
    cut_edges: int = 0

    def __iter__(self):
        return iter(self.partitions)

    def __len__(self):
        return len(self.partitions)


class SmartPartitioner:
    """Algorithm 3: pre-partition, partition, and expand back to tuples."""

    def __init__(
        self,
        *,
        batch_size: int = 1000,
        weighting: WeightingParams = WeightingParams(),
        partitioner: GraphPartitioner | None = None,
        use_prepartitioning: bool = True,
    ):
        if batch_size < 2:
            raise ValueError("batch_size must be at least 2")
        self.batch_size = batch_size
        self.weighting = weighting
        self.partitioner = partitioner or GraphPartitioner()
        self.use_prepartitioning = use_prepartitioning

    # -- helpers ------------------------------------------------------------------
    def num_partitions(self, graph: MatchGraph) -> int:
        """``k = ceil((|T1| + |T2|) / batch_size)`` as in Section 5.3."""
        return max(1, math.ceil(graph.num_nodes / self.batch_size))

    @staticmethod
    def by_connected_components(graph: MatchGraph) -> SmartPartitionResult:
        """The exact, accuracy-preserving split along connected components."""
        partitions = [
            TuplePartition(index, frozenset(left), frozenset(right))
            for index, (left, right) in enumerate(connected_components(graph))
        ]
        return SmartPartitionResult(partitions, num_supernodes=len(partitions))

    # -- main entry point ---------------------------------------------------------
    def partition(self, graph: MatchGraph, *, num_parts: int | None = None) -> SmartPartitionResult:
        """Split the match graph into bounded-size sub-problems."""
        if graph.num_nodes == 0:
            return SmartPartitionResult([])

        k = num_parts if num_parts is not None else self.num_partitions(graph)
        if k <= 1:
            everything = TuplePartition(
                0, frozenset(graph.left_keys), frozenset(graph.right_keys)
            )
            return SmartPartitionResult([everything], num_supernodes=graph.num_nodes)

        # Line 1: pre-partition (Algorithm 2).  When disabled, every node is
        # its own supernode, which reduces to plain graph partitioning.
        if self.use_prepartitioning:
            coarse = prepartition(graph, self.weighting)
        else:
            coarse = _identity_coarse(graph, self.weighting)
        weighted = WeightedGraph.from_edges(coarse.num_nodes, coarse.edges, coarse.sizes())

        # Line 2: partition the coarse graph.
        partition = self.partitioner.partition(weighted, k, float(self.batch_size))

        # Lines 3-6: expand supernodes back into tuple partitions.
        left_groups: list[set[str]] = [set() for _ in range(k)]
        right_groups: list[set[str]] = [set() for _ in range(k)]
        for supernode, part in zip(coarse.supernodes, partition.assignment):
            left_groups[part].update(supernode.left_keys)
            right_groups[part].update(supernode.right_keys)

        partitions = [
            TuplePartition(index, frozenset(left), frozenset(right))
            for index, (left, right) in enumerate(zip(left_groups, right_groups))
            if left or right
        ]
        cut_edges = sum(
            1
            for edge in graph.edges
            if _part_of(edge.left_key, partitions, side="left")
            != _part_of(edge.right_key, partitions, side="right")
        )
        return SmartPartitionResult(
            partitions,
            num_supernodes=coarse.num_nodes,
            cut_weight=partition.cut,
            cut_edges=cut_edges,
        )


def _part_of(key: str, partitions: list[TuplePartition], *, side: str) -> int:
    for partition in partitions:
        keys = partition.left_keys if side == "left" else partition.right_keys
        if key in keys:
            return partition.index
    return -1


def _identity_coarse(graph: MatchGraph, params: WeightingParams):
    """A CoarseGraph with one supernode per original node (no merging)."""
    from repro.graphs.bipartite import GraphNode, Side
    from repro.graphs.coarsen import CoarseGraph, SuperNode
    from repro.graphs.weighting import adjust_weight

    supernodes: list[SuperNode] = []
    node_of: dict[GraphNode, int] = {}
    for node in graph.nodes():
        supernode = SuperNode(index=len(supernodes))
        supernode.add(node)
        node_of[node] = supernode.index
        supernodes.append(supernode)

    edges: dict[tuple[int, int], float] = {}
    for edge in graph.edges:
        a = node_of[edge.left_node]
        b = node_of[edge.right_node]
        key = (a, b) if a < b else (b, a)
        edges[key] = edges.get(key, 0.0) + adjust_weight(edge.probability, params)
    return CoarseGraph(supernodes, edges, node_of)

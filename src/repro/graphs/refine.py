"""Kernighan–Lin style boundary refinement for balanced partitions."""

from __future__ import annotations

from typing import Sequence


def cut_weight(adjacency: Sequence[dict[int, float]], assignment: Sequence[int]) -> float:
    """Total weight of edges whose endpoints lie in different partitions."""
    total = 0.0
    for node, neighbors in enumerate(adjacency):
        for neighbor, weight in neighbors.items():
            if neighbor > node and assignment[node] != assignment[neighbor]:
                total += weight
    return total


def refine_partition(
    adjacency: Sequence[dict[int, float]],
    sizes: Sequence[float],
    assignment: list[int],
    num_parts: int,
    max_part_size: float,
    *,
    max_passes: int = 8,
) -> list[int]:
    """Greedy boundary refinement.

    Repeatedly moves a node to the neighbouring partition with the largest
    positive gain (reduction in cut weight), subject to the balance constraint
    ``|partition| <= max_part_size``.  Terminates when a full pass makes no
    improving move or after ``max_passes`` passes.
    """
    assignment = list(assignment)
    part_sizes = [0.0] * num_parts
    for node, part in enumerate(assignment):
        part_sizes[part] += sizes[node]

    for _ in range(max_passes):
        improved = False
        for node in range(len(adjacency)):
            current = assignment[node]
            # Weight of this node's edges towards each partition.
            weight_to: dict[int, float] = {}
            for neighbor, weight in adjacency[node].items():
                part = assignment[neighbor]
                weight_to[part] = weight_to.get(part, 0.0) + weight
            internal = weight_to.get(current, 0.0)

            best_part = current
            best_gain = 0.0
            for part, external in weight_to.items():
                if part == current:
                    continue
                if part_sizes[part] + sizes[node] > max_part_size:
                    continue
                gain = external - internal
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_part = part
            if best_part != current:
                part_sizes[current] -= sizes[node]
                part_sizes[best_part] += sizes[node]
                assignment[node] = best_part
                improved = True
        if not improved:
            break
    return assignment

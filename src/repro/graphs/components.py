"""Connected components of the bipartite match graph.

Splitting the EXP-3D problem along connected components is the "free"
optimization mentioned at the start of Section 4: it never changes the optimum
because no constraint or objective term crosses component boundaries.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.bipartite import GraphNode, MatchGraph, Side


def connected_components(graph: MatchGraph) -> list[tuple[set[str], set[str]]]:
    """Connected components as ``(left_keys, right_keys)`` pairs.

    Isolated nodes form singleton components; the output order is
    deterministic (first-seen order of nodes).
    """
    visited: set[GraphNode] = set()
    components: list[tuple[set[str], set[str]]] = []

    for start in graph.nodes():
        if start in visited:
            continue
        left: set[str] = set()
        right: set[str] = set()
        queue = deque([start])
        visited.add(start)
        while queue:
            node = queue.popleft()
            if node.side is Side.LEFT:
                left.add(node.key)
            else:
                right.add(node.key)
            for neighbor in graph.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        components.append((left, right))
    return components

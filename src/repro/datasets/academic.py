"""Academic dataset pairs (Example 1, Section 5.1.1, Figure 4 top).

The real data behind the paper's Academic experiments -- the UMass-Amherst and
OSU undergraduate program listings and the NCES statistics -- was scraped from
the web and is not redistributable.  This generator produces structurally
equivalent pairs:

* the *left* dataset lists one row per (major, degree) with the schema
  ``Major(Major, Degree, School)`` and is queried with
  ``SELECT COUNT(Major) FROM Major``;
* the *right* dataset stores aggregated statistics per program with the schema
  ``School(ID, Univ_name, City, Url)``, ``Stats(ID, Program, bach_degr)`` and
  is queried with ``SELECT SUM(bach_degr) FROM School JOIN Stats WHERE
  Univ_name = <univ>``.

The generated disagreements reproduce the classes the paper reports: majors
missing from the statistics (including associate-only programs), programs
missing from the listing, majors with several degree types counted multiple
times by the COUNT query but reported with ``bach_degr = 1``, corrupted
``bach_degr`` values, and program renames of varying difficulty that stress the
record-linkage step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets import names as name_pools
from repro.datasets.gold import DatasetPair
from repro.matching.attribute_match import matching
from repro.relational.executor import Database
from repro.relational.expressions import col
from repro.relational.query import Join, Scan, count_query, sum_query


@dataclass(frozen=True)
class AcademicConfig:
    """Shape of a generated academic dataset pair."""

    name: str = "academic"
    university: str = "UMass-Amherst"
    university_id: str = "U001"
    # Matched structure.
    matched_programs: int = 71
    many_to_one_programs: int = 8      # NCES programs covering two left majors
    left_only_majors: int = 16
    right_only_programs: int = 10
    # Degree structure on the left.
    multi_degree_fraction: float = 0.18
    associate_fraction: float = 0.12
    # Error / rename structure.
    bach_degr_error_fraction: float = 0.15
    hard_rename_fraction: float = 0.06
    medium_rename_fraction: float = 0.25
    # Confusable twins: pairs of *different* matched programs whose names
    # overlap (e.g. "Music" and "Music Education") while the first one is
    # renamed in the statistics dataset.  Record-linkage and greedy matching
    # tend to commit the first program to the second's statistics entry (it
    # has the higher similarity), which is exactly the failure mode the
    # paper's A/B/A'/B' example illustrates; the global optimization recovers
    # the correct assignment.
    confusable_pairs: int = 8
    # Right-hand-side filler (programs of other universities, filtered out by the query).
    other_university_programs: int = 40
    seed: int = 7

    @property
    def left_major_count(self) -> int:
        return self.matched_programs + self.many_to_one_programs + self.left_only_majors


def umass_config() -> AcademicConfig:
    """Sizes mirroring the UMass-Amherst vs. NCES statistics of Figure 4."""
    return AcademicConfig(
        name="umass_vs_nces",
        university="UMass-Amherst",
        matched_programs=71,
        many_to_one_programs=8,
        left_only_majors=16,
        right_only_programs=10,
        seed=7,
    )


def osu_config() -> AcademicConfig:
    """Sizes mirroring the OSU vs. NCES statistics of Figure 4."""
    return AcademicConfig(
        name="osu_vs_nces",
        university="OSU",
        university_id="U010",
        matched_programs=140,
        many_to_one_programs=12,
        left_only_majors=54,
        right_only_programs=13,
        confusable_pairs=16,
        seed=11,
    )


def _rename(rng: random.Random, name: str, config: AcademicConfig) -> str:
    """The right-hand-side name of a matched program (possibly a variant)."""
    roll = rng.random()
    if roll < config.hard_rename_fraction:
        return name_pools.HARD_RENAMES.get(
            name, " ".join(reversed(name.split()[:1])) + " " + rng.choice(
                ["Interdisciplinary Option", "Integrated Pathway", "Professional Track"]
            )
        )
    if roll < config.hard_rename_fraction + config.medium_rename_fraction:
        suffix = rng.choice(name_pools.MEDIUM_RENAME_SUFFIXES)
        return f"{name} {suffix}"
    return name


def generate_academic_pair(config: AcademicConfig | None = None) -> DatasetPair:
    """Generate one academic dataset pair with its hidden correspondence."""
    config = config or umass_config()
    rng = random.Random(config.seed)

    pool = name_pools.program_name_pool(
        config.left_major_count
        + config.right_only_programs
        + config.other_university_programs
        + 10
    )
    # The pool lists plain field names first and increasingly decorated
    # variants later.  Real program listings mostly use plain names, so the
    # programs that matter for the comparison draw from the front of the pool
    # (shuffled among themselves) and the filler programs of other
    # universities take the decorated tail.
    core_count = config.matched_programs + config.left_only_majors + config.right_only_programs
    core_pool = pool[:core_count]
    rng.shuffle(core_pool)
    filler_pool = pool[core_count:]
    cursor = 0

    def take(count: int) -> list[str]:
        nonlocal cursor
        chunk = core_pool[cursor : cursor + count]
        cursor += count
        return chunk

    matched_names = take(config.matched_programs)
    left_only_names = take(config.left_only_majors)
    right_only_names = take(config.right_only_programs)
    other_univ_names = filler_pool[: config.other_university_programs]

    # Pre-compute the statistics-side name of every matched program.
    right_name_of = {index: _rename(rng, name, config) for index, name in enumerate(matched_names)}

    # Confusable twins: program B is renamed to extend program A's name, and
    # program A is renamed away on the statistics side, so A's listing entry is
    # more similar to B's statistics entry than to its own.
    available = list(range(config.matched_programs))
    rng.shuffle(available)
    for _ in range(config.confusable_pairs):
        if len(available) < 2:
            break
        first, second = available.pop(), available.pop()
        base_name = matched_names[first]
        twin_name = f"{base_name} {rng.choice(['Education', 'Technology', 'Administration'])}"
        matched_names[second] = twin_name
        right_name_of[second] = twin_name
        right_name_of[first] = (
            f"{base_name.split()[0]} "
            f"{rng.choice(['Integrated Pathway', 'Professional Practice', 'Interdisciplinary Option'])}"
        )

    # ---- left dataset: Major(Major, Degree, School) -------------------------------
    major_rows: list[dict] = []
    entity_of_left_row: dict[int, str] = {}

    def add_major_rows(major_name: str, entity: str, *, allow_multi: bool = True) -> int:
        """Append degree rows for one major; returns the number of rows added."""
        degrees = [rng.choice(name_pools.DEGREES_BACHELOR)]
        if allow_multi and rng.random() < config.multi_degree_fraction:
            other = "B.A." if degrees[0] == "B.S." else "B.S."
            degrees.append(other)
        if rng.random() < config.associate_fraction:
            degrees.append(name_pools.DEGREE_ASSOCIATE)
        school = rng.choice(
            ["College of Natural Sciences", "College of Engineering", "School of Management",
             "College of Humanities", "College of Social Sciences", "School of Public Health"]
        )
        for degree in degrees:
            entity_of_left_row[len(major_rows)] = entity
            major_rows.append({"Major": major_name, "Degree": degree, "School": school})
        return len(degrees)

    # Matched programs: entity id is the shared program concept.
    bachelor_count_of_entity: dict[str, int] = {}
    for index, name in enumerate(matched_names):
        entity = f"prog:{index}"
        added = add_major_rows(name, entity)
        # Count only bachelor rows for the "true" statistic.
        bachelors = sum(
            1 for row in major_rows[-added:] if row["Degree"] in name_pools.DEGREES_BACHELOR
        )
        bachelor_count_of_entity[entity] = bachelors

    # Many-to-one: extra left majors that belong to an existing NCES program.
    many_to_one_targets = rng.sample(range(config.matched_programs), config.many_to_one_programs)
    for target in many_to_one_targets:
        entity = f"prog:{target}"
        base_name = matched_names[target]
        variant = f"{base_name} {rng.choice(['Option B', 'Honors Track', 'Dual Concentration'])}"
        added = add_major_rows(variant, entity, allow_multi=False)
        bachelors = sum(
            1 for row in major_rows[-added:] if row["Degree"] in name_pools.DEGREES_BACHELOR
        )
        bachelor_count_of_entity[entity] += bachelors

    # Left-only majors (missing from the statistics dataset).
    for index, name in enumerate(left_only_names):
        add_major_rows(name, f"left_only:{index}")

    # ---- right dataset: School(ID, Univ_name, City, Url) + Stats(ID, Program, bach_degr)
    school_rows = [
        {
            "ID": config.university_id,
            "Univ_name": config.university,
            "City": "Amherst" if "UMass" in config.university else "Columbus",
            "Url": f"https://www.{config.university.lower().replace('-', '').replace(' ', '')}.edu",
        }
    ]
    for other_id, other_name, other_city in name_pools.OTHER_UNIVERSITIES:
        school_rows.append(
            {"ID": other_id, "Univ_name": other_name, "City": other_city,
             "Url": f"https://www.{other_name.split()[0].lower()}.edu"}
        )

    stats_rows: list[dict] = []
    entity_of_right_row: dict[int, str] = {}

    for index, name in enumerate(matched_names):
        entity = f"prog:{index}"
        true_bachelors = bachelor_count_of_entity[entity]
        reported = true_bachelors
        if rng.random() < config.bach_degr_error_fraction:
            # The statistics dataset under- or over-reports the degree count.
            reported = max(1, true_bachelors + rng.choice([-1, 1]))
            if reported == true_bachelors:
                reported = 1
        entity_of_right_row[len(stats_rows)] = entity
        stats_rows.append(
            {
                "ID": config.university_id,
                "Program": right_name_of[index],
                "bach_degr": reported,
            }
        )

    for index, name in enumerate(right_only_names):
        entity_of_right_row[len(stats_rows)] = f"right_only:{index}"
        stats_rows.append(
            {"ID": config.university_id, "Program": name, "bach_degr": rng.randint(1, 3)}
        )

    # Filler programs of other universities (filtered out by the query).
    for name in other_univ_names:
        other_id = rng.choice(name_pools.OTHER_UNIVERSITIES)[0]
        stats_rows.append({"ID": other_id, "Program": name, "bach_degr": rng.randint(1, 4)})

    # ---- databases, queries, matches ------------------------------------------------
    db_left = Database(f"{config.name}_left")
    db_left.add_records("Major", major_rows)
    db_right = Database(f"{config.name}_right")
    db_right.add_records("School", school_rows)
    db_right.add_records("Stats", stats_rows)

    query_left = count_query(
        "Q1",
        Scan("Major"),
        attribute="Major",
        description=f"Number of undergraduate degree programs at {config.university} (listing)",
    )
    query_right = sum_query(
        "Q2",
        Join(Scan("School"), Scan("Stats"), on=(("ID", "ID"),)),
        "bach_degr",
        predicate=(col("Univ_name") == config.university),
        description=f"Number of undergraduate degree programs at {config.university} (statistics)",
    )

    attribute_matches = matching(("Major", "Program", "<="))

    entity_ids_left = {f"Major:{index}": entity for index, entity in entity_of_left_row.items()}
    entity_ids_right = {f"Stats:{index}": entity for index, entity in entity_of_right_row.items()}

    return DatasetPair(
        name=config.name,
        db_left=db_left,
        db_right=db_right,
        query_left=query_left,
        query_right=query_right,
        attribute_matches=attribute_matches,
        entity_ids_left=entity_ids_left,
        entity_ids_right=entity_ids_right,
        description=(
            f"{config.university} program listing vs. NCES-style statistics; "
            f"{len(major_rows)} listing rows, {len(stats_rows)} statistics rows"
        ),
        # Keep only candidates with a meaningful token overlap so the size of
        # the initial mapping is comparable to the paper's Figure 4 (|M_tuple|
        # in the low hundreds rather than thousands of spurious pairs).
        default_min_similarity=0.2,
    )

"""IMDb-style two-view workload (Section 5.1.1, Figure 4 bottom).

The paper takes the public IMDb dump, publishes it as two views with different
schemas, loses some information during the migration into view 1 (a movie
keeps only a single country and genre) and injects ~5% random errors with
BART, then evaluates 10 query templates (100 instantiations).  The raw IMDb
dump is several gigabytes and not available offline, so this module builds a
synthetic movie/person universe of configurable size and publishes it through
the same two schemas with the same disagreement mechanisms:

View 1 (``DIMDb1``)::

    Movie(movie_id, title, release_year, genre, country, runtimes, gross, budget)
    Actor(actor_id, firstname, lastname, gender, dob)
    Director(director_id, firstname, lastname, gender, dob)
    MovieDirector(movie_id, director_id)     MovieActor(movie_id, actor_id)

View 2 (``DIMDb2``)::

    Movie(m_id, title, release_year)         MovieInfo(m_id, info_type, info)
    Person(p_id, name, gender, dob)          MoviePerson(m_id, p_id)

Sources of disagreement, mirroring the paper:

* view 1 keeps only the first genre and country of each movie (migration loss);
* view 2's ``MoviePerson`` merges acting and directing credits, and ``Person``
  merges the actor/director tables, so person-centric queries disagree;
* ~5% of numeric and date values are corrupted (BART-style) in each view.

:func:`generate_imdb_workload` returns an :class:`IMDbWorkload` whose
``pair(template, param)`` method instantiates any of the 10 query templates as
a :class:`~repro.datasets.gold.DatasetPair` sharing the two view databases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.corruption import CorruptionConfig, inject_errors
from repro.datasets.gold import DatasetPair
from repro.matching.attribute_match import AttributeMatching, matching
from repro.relational.executor import Database
from repro.relational.expressions import col
from repro.relational.query import (
    AggregateFunction,
    Difference,
    Join,
    Query,
    Scan,
    Select,
    aggregate_query,
    count_query,
    projection_query,
    sum_query,
)

GENRES = ["Drama", "Comedy", "Action", "Thriller", "Romance", "Horror", "Short", "Documentary"]
COUNTRIES = ["USA", "UK", "France", "Germany", "Italy", "Japan", "Canada", "Spain"]
FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas",
    "Sarah", "Charles", "Karen", "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony",
    "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul", "Emily",
    "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Carol", "Kevin", "Amanda", "Brian",
    "Dorothy", "George", "Melissa", "Timothy", "Deborah", "Ronald",
]
LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker",
    "Hall", "Rivera", "Campbell", "Mitchell", "Carter", "Roberts",
]
TITLE_WORDS = [
    "Midnight", "Return", "Shadow", "River", "Last", "Broken", "Silent", "Golden", "Winter",
    "Summer", "Lost", "Crimson", "Forgotten", "Burning", "Distant", "Hidden", "Iron", "Paper",
    "Glass", "Stone", "Electric", "Velvet", "Savage", "Gentle", "Wild", "Quiet", "Scarlet",
    "Hollow", "Rising", "Falling", "Northern", "Southern", "Eastern", "Western", "Final",
]
TITLE_NOUNS = [
    "Harvest", "Promise", "Letter", "Garden", "Station", "Voyage", "Horizon", "Secret",
    "Bridge", "Empire", "Orchard", "Mirror", "Carnival", "Symphony", "Harbor", "Desert",
    "Island", "Kingdom", "Journey", "Whisper", "Echo", "Storm", "Lantern", "Compass",
    "Crossing", "Reunion", "Paradox", "Legacy", "Frontier", "Cascade",
]


@dataclass(frozen=True)
class IMDbConfig:
    """Size and error parameters of the synthetic IMDb universe."""

    num_movies: int = 300
    num_people: int = 400
    year_range: tuple[int, int] = (1994, 2003)
    actors_per_movie: tuple[int, int] = (2, 4)
    multi_genre_fraction: float = 0.45
    multi_country_fraction: float = 0.3
    sequel_fraction: float = 0.1
    error_rate: float = 0.05
    seed: int = 17


@dataclass
class _Person:
    pid: int
    firstname: str
    lastname: str
    gender: str
    dob: int

    @property
    def name(self) -> str:
        return f"{self.firstname} {self.lastname}"


@dataclass
class _Movie:
    mid: int
    title: str
    release_year: int
    genres: list[str]
    countries: list[str]
    runtime: int
    gross: float
    budget: float
    director: int
    actors: list[int]


@dataclass
class IMDbWorkload:
    """The two generated views plus everything needed to instantiate templates."""

    config: IMDbConfig
    db_view1: Database
    db_view2: Database
    movie_entities_view1: dict[str, object]
    movie_entities_view2: dict[str, object]
    person_entities_view1: dict[str, object]
    person_entities_view2: dict[str, object]
    movies: list[_Movie] = field(default_factory=list)
    people: list[_Person] = field(default_factory=list)

    TEMPLATES = tuple(f"Q{i}" for i in range(1, 11))

    # -- parameter selection ------------------------------------------------------------
    def years_with_movies(self, minimum: int = 3) -> list[int]:
        """Years that have at least ``minimum`` movies (usable template parameters)."""
        counts: dict[int, int] = {}
        for movie in self.movies:
            counts[movie.release_year] = counts.get(movie.release_year, 0) + 1
        return sorted(year for year, count in counts.items() if count >= minimum)

    def genres(self) -> list[str]:
        return list(GENRES)

    # -- template instantiation -----------------------------------------------------------
    def pair(self, template: str, param) -> DatasetPair:
        """Instantiate a query template as a :class:`DatasetPair`."""
        if template not in self.TEMPLATES:
            raise ValueError(f"unknown template {template!r}; expected one of {self.TEMPLATES}")
        builder = getattr(self, f"_build_{template.lower()}")
        query_left, query_right, attribute_matches, entity_kind = builder(param)
        if entity_kind == "movie":
            left_entities = self.movie_entities_view1
            right_entities = self.movie_entities_view2
            # Movies filtered to the same year share half the similarity score
            # through the release_year attribute, so a meaningful candidate
            # additionally needs title overlap.
            min_similarity = 0.55
        else:
            left_entities = self.person_entities_view1
            right_entities = self.person_entities_view2
            min_similarity = 0.3
        return DatasetPair(
            name=f"imdb_{template}_{param}",
            db_left=self.db_view1,
            db_right=self.db_view2,
            query_left=query_left,
            query_right=query_right,
            attribute_matches=attribute_matches,
            entity_ids_left=left_entities,
            entity_ids_right=right_entities,
            description=f"IMDb template {template} with parameter {param!r}",
            default_min_similarity=min_similarity,
        )

    # Shared building blocks.
    @staticmethod
    def _movie_matches() -> AttributeMatching:
        return matching(("title", "title"), ("release_year", "release_year"))

    @staticmethod
    def _person_matches() -> AttributeMatching:
        return matching(("firstname", "name"), ("lastname", "name"))

    @staticmethod
    def _view2_movies_with_info(info_type: str, info_value=None):
        """View 2: Movie joined with a filtered MovieInfo."""
        info = Select(Scan("MovieInfo"), col("info_type") == info_type)
        if info_value is not None:
            info = Select(info, col("info") == info_value)
        return Join(Scan("Movie"), info, on=(("m_id", "m_id"),))

    # Q1: actors cast in short movies released in <year>.
    def _build_q1(self, year: int):
        v1_source = Join(
            Join(
                Select(Scan("Movie"), (col("release_year") == year) & (col("genre") == "Short")),
                Scan("MovieActor"),
                on=(("movie_id", "movie_id"),),
            ),
            Scan("Actor"),
            on=(("actor_id", "actor_id"),),
        )
        query_left = projection_query(
            "Q1-v1", v1_source, ["firstname", "lastname"],
            description=f"Actors cast in short movies released in {year} (view 1)",
        )
        v2_movies = Select(self._view2_movies_with_info("genre", "Short"), col("release_year") == year)
        v2_source = Join(
            Join(v2_movies, Scan("MoviePerson"), on=(("m_id", "m_id"),)),
            Scan("Person"),
            on=(("p_id", "p_id"),),
        )
        query_right = projection_query(
            "Q1-v2", v2_source, ["name"],
            description=f"Actors cast in short movies released in {year} (view 2)",
        )
        return query_left, query_right, self._person_matches(), "person"

    # Q2: movies directed by someone born in <year>.
    def _build_q2(self, year: int):
        v1_source = Join(
            Join(Scan("Movie"), Scan("MovieDirector"), on=(("movie_id", "movie_id"),)),
            Select(Scan("Director"), col("dob") == year),
            on=(("director_id", "director_id"),),
        )
        query_left = projection_query(
            "Q2-v1", v1_source, ["title", "release_year"],
            description=f"Movies directed by someone born in {year} (view 1)",
        )
        v2_source = Join(
            Join(Scan("Movie"), Scan("MoviePerson"), on=(("m_id", "m_id"),)),
            Select(Scan("Person"), col("dob") == year),
            on=(("p_id", "p_id"),),
        )
        query_right = projection_query(
            "Q2-v2", v2_source, ["title", "release_year"],
            description=f"Movies directed by someone born in {year} (view 2)",
        )
        return query_left, query_right, self._movie_matches(), "movie"

    # Q3: number of comedy movies released in <year>.
    def _build_q3(self, year: int):
        query_left = count_query(
            "Q3-v1",
            Select(Scan("Movie"), (col("release_year") == year) & (col("genre") == "Comedy")),
            attribute="title",
            description=f"Number of comedy movies released in {year} (view 1)",
        )
        query_right = count_query(
            "Q3-v2",
            Select(self._view2_movies_with_info("genre", "Comedy"), col("release_year") == year),
            attribute="title",
            description=f"Number of comedy movies released in {year} (view 2)",
        )
        return query_left, query_right, self._movie_matches(), "movie"

    # Q4: number of movies released in the US in <year>.
    def _build_q4(self, year: int):
        query_left = count_query(
            "Q4-v1",
            Select(Scan("Movie"), (col("release_year") == year) & (col("country") == "USA")),
            attribute="title",
            description=f"Number of movies released in the US in {year} (view 1)",
        )
        query_right = count_query(
            "Q4-v2",
            Select(self._view2_movies_with_info("country", "USA"), col("release_year") == year),
            attribute="title",
            description=f"Number of movies released in the US in {year} (view 2)",
        )
        return query_left, query_right, self._movie_matches(), "movie"

    # Q5-Q9: numeric aggregates over movies released in <year>.
    def _numeric_template(self, name: str, year: int, function: AggregateFunction, v1_attr: str, info_type: str):
        query_left = aggregate_query(
            f"{name}-v1",
            function,
            Select(Scan("Movie"), col("release_year") == year),
            v1_attr,
            description=f"{function.value}({v1_attr}) of movies released in {year} (view 1)",
        )
        query_right = aggregate_query(
            f"{name}-v2",
            function,
            Select(self._view2_movies_with_info(info_type), col("release_year") == year),
            "info",
            description=f"{function.value}({info_type}) of movies released in {year} (view 2)",
        )
        return query_left, query_right, self._movie_matches(), "movie"

    def _build_q5(self, year: int):
        return self._numeric_template("Q5", year, AggregateFunction.SUM, "gross", "gross")

    def _build_q6(self, year: int):
        return self._numeric_template("Q6", year, AggregateFunction.MAX, "gross", "gross")

    def _build_q7(self, year: int):
        return self._numeric_template("Q7", year, AggregateFunction.MAX, "runtimes", "runtime")

    def _build_q8(self, year: int):
        return self._numeric_template("Q8", year, AggregateFunction.AVG, "gross", "gross")

    def _build_q9(self, year: int):
        return self._numeric_template("Q9", year, AggregateFunction.AVG, "runtimes", "runtime")

    # Q10: actresses who have not starred in any <genre> movies.
    def _build_q10(self, genre: str):
        v1_actresses = Select(Scan("Actor"), col("gender") == "F")
        v1_in_genre = Join(
            Join(
                Select(Scan("Movie"), col("genre") == genre),
                Scan("MovieActor"),
                on=(("movie_id", "movie_id"),),
            ),
            Scan("Actor"),
            on=(("actor_id", "actor_id"),),
        )
        query_left = projection_query(
            "Q10-v1",
            Difference(v1_actresses, v1_in_genre, on=("firstname", "lastname")),
            ["firstname", "lastname"],
            description=f"Actresses who have not starred in any {genre} movies (view 1)",
        )

        v2_women = Select(Scan("Person"), col("gender") == "F")
        v2_in_genre = Join(
            Join(self._view2_movies_with_info("genre", genre), Scan("MoviePerson"), on=(("m_id", "m_id"),)),
            Scan("Person"),
            on=(("p_id", "p_id"),),
        )
        query_right = projection_query(
            "Q10-v2",
            Difference(v2_women, v2_in_genre, on=("name",)),
            ["name"],
            description=f"Actresses who have not starred in any {genre} movies (view 2)",
        )
        return query_left, query_right, self._person_matches(), "person"


# -----------------------------------------------------------------------------------
# Universe and view generation.
# -----------------------------------------------------------------------------------

def _generate_people(config: IMDbConfig, rng: random.Random) -> list[_Person]:
    people = []
    for pid in range(config.num_people):
        people.append(
            _Person(
                pid=pid,
                firstname=rng.choice(FIRST_NAMES),
                lastname=rng.choice(LAST_NAMES),
                gender=rng.choice(["F", "M"]),
                dob=rng.randint(1930, 1985),
            )
        )
    return people


def _generate_movies(config: IMDbConfig, people: list[_Person], rng: random.Random) -> list[_Movie]:
    movies = []
    used_titles: set[str] = set()
    for mid in range(config.num_movies):
        if movies and rng.random() < config.sequel_fraction:
            # Sequels/remakes reuse an existing title (plus a roman numeral),
            # which gives the record-linkage step genuinely ambiguous titles.
            base = rng.choice(movies).title
            title = f"{base} {rng.choice(['II', 'III', 'Returns'])}"
            if title in used_titles:
                title = f"{base} {len(used_titles)}"
            used_titles.add(title)
        else:
            while True:
                title = f"{rng.choice(TITLE_WORDS)} {rng.choice(TITLE_NOUNS)}"
                if rng.random() < 0.3:
                    title = f"The {title}"
                if title not in used_titles:
                    used_titles.add(title)
                    break
        genres = [rng.choice(GENRES)]
        if rng.random() < config.multi_genre_fraction:
            extra = rng.choice([g for g in GENRES if g not in genres])
            genres.append(extra)
        countries = [rng.choice(COUNTRIES)]
        if rng.random() < config.multi_country_fraction:
            extra = rng.choice([c for c in COUNTRIES if c not in countries])
            countries.append(extra)
        num_actors = rng.randint(*config.actors_per_movie)
        cast = rng.sample(range(len(people)), num_actors + 1)
        movies.append(
            _Movie(
                mid=mid,
                title=title,
                release_year=rng.randint(*config.year_range),
                genres=genres,
                countries=countries,
                runtime=rng.randint(25, 200) if "Short" not in genres else rng.randint(5, 40),
                gross=round(rng.uniform(0.5, 400.0), 2),     # millions
                budget=round(rng.uniform(0.2, 200.0), 2),    # millions
                director=cast[0],
                actors=cast[1:],
            )
        )
    return movies


def generate_imdb_workload(config: IMDbConfig | None = None) -> IMDbWorkload:
    """Generate the universe, publish the two views, and inject errors."""
    config = config or IMDbConfig()
    rng = random.Random(config.seed)
    people = _generate_people(config, rng)
    movies = _generate_movies(config, people, rng)

    # ---- view 1 --------------------------------------------------------------------
    v1_movie_rows = [
        {
            "movie_id": movie.mid,
            "title": movie.title,
            "release_year": movie.release_year,
            "genre": movie.genres[0],          # migration loss: single genre
            "country": movie.countries[0],     # migration loss: single country
            "runtimes": movie.runtime,
            "gross": movie.gross,
            "budget": movie.budget,
        }
        for movie in movies
    ]
    actor_ids = sorted({actor for movie in movies for actor in movie.actors})
    director_ids = sorted({movie.director for movie in movies})
    v1_actor_rows = [
        {
            "actor_id": pid,
            "firstname": people[pid].firstname,
            "lastname": people[pid].lastname,
            "gender": people[pid].gender,
            "dob": people[pid].dob,
        }
        for pid in actor_ids
    ]
    v1_director_rows = [
        {
            "director_id": pid,
            "firstname": people[pid].firstname,
            "lastname": people[pid].lastname,
            "gender": people[pid].gender,
            "dob": people[pid].dob,
        }
        for pid in director_ids
    ]
    v1_movie_actor_rows = [
        {"movie_id": movie.mid, "actor_id": actor} for movie in movies for actor in movie.actors
    ]
    v1_movie_director_rows = [{"movie_id": movie.mid, "director_id": movie.director} for movie in movies]

    # ---- view 2 --------------------------------------------------------------------
    v2_movie_rows = [
        {"m_id": movie.mid, "title": movie.title, "release_year": movie.release_year}
        for movie in movies
    ]
    v2_movie_info_rows: list[dict] = []
    for movie in movies:
        for genre in movie.genres:
            v2_movie_info_rows.append({"m_id": movie.mid, "info_type": "genre", "info": genre})
        for country in movie.countries:
            v2_movie_info_rows.append({"m_id": movie.mid, "info_type": "country", "info": country})
        v2_movie_info_rows.append({"m_id": movie.mid, "info_type": "runtime", "info": str(movie.runtime)})
        v2_movie_info_rows.append({"m_id": movie.mid, "info_type": "gross", "info": str(movie.gross)})
        v2_movie_info_rows.append({"m_id": movie.mid, "info_type": "budget", "info": str(movie.budget)})
    person_ids = sorted(set(actor_ids) | set(director_ids))
    v2_person_rows = [
        {
            "p_id": pid,
            "name": people[pid].name,
            "gender": people[pid].gender,
            "dob": people[pid].dob,
        }
        for pid in person_ids
    ]
    v2_movie_person_rows = [
        {"m_id": movie.mid, "p_id": person}
        for movie in movies
        for person in set(movie.actors) | {movie.director}
    ]

    # ---- error injection (BART-style, ~5%) -------------------------------------------
    error_rng = random.Random(config.seed + 1)
    v1_movie_rows, _ = inject_errors(
        v1_movie_rows,
        CorruptionConfig(rate=config.error_rate, attributes=("release_year", "gross", "runtimes")),
        rng=error_rng,
    )
    v1_movie_rows, _ = inject_errors(
        v1_movie_rows,
        CorruptionConfig(rate=config.error_rate, attributes=("title",)),
        rng=error_rng,
    )
    v2_person_rows, _ = inject_errors(
        v2_person_rows,
        CorruptionConfig(rate=config.error_rate / 2, attributes=("name",)),
        rng=error_rng,
    )
    v2_movie_info_rows, _ = inject_errors(
        v2_movie_info_rows,
        CorruptionConfig(rate=config.error_rate / 2, attributes=("info",)),
        rng=error_rng,
    )
    v2_movie_rows, _ = inject_errors(
        v2_movie_rows,
        CorruptionConfig(rate=config.error_rate / 2, attributes=("release_year",)),
        rng=error_rng,
    )

    # ---- databases -------------------------------------------------------------------
    db_view1 = Database("IMDb_view1")
    db_view1.add_records("Movie", v1_movie_rows)
    db_view1.add_records("Actor", v1_actor_rows)
    db_view1.add_records("Director", v1_director_rows)
    db_view1.add_records("MovieActor", v1_movie_actor_rows)
    db_view1.add_records("MovieDirector", v1_movie_director_rows)

    db_view2 = Database("IMDb_view2")
    db_view2.add_records("Movie", v2_movie_rows)
    db_view2.add_records("MovieInfo", v2_movie_info_rows)
    db_view2.add_records("Person", v2_person_rows)
    db_view2.add_records("MoviePerson", v2_movie_person_rows)

    # ---- hidden entity correspondences -------------------------------------------------
    movie_entities_view1 = {f"Movie:{index}": ("movie", row["movie_id"]) for index, row in enumerate(v1_movie_rows)}
    movie_entities_view2 = {f"Movie:{index}": ("movie", row["m_id"]) for index, row in enumerate(v2_movie_rows)}
    person_entities_view1 = {
        f"Actor:{index}": ("person", row["actor_id"]) for index, row in enumerate(v1_actor_rows)
    }
    person_entities_view1.update(
        {f"Director:{index}": ("person", row["director_id"]) for index, row in enumerate(v1_director_rows)}
    )
    person_entities_view2 = {
        f"Person:{index}": ("person", row["p_id"]) for index, row in enumerate(v2_person_rows)
    }

    return IMDbWorkload(
        config=config,
        db_view1=db_view1,
        db_view2=db_view2,
        movie_entities_view1=movie_entities_view1,
        movie_entities_view2=movie_entities_view2,
        person_entities_view1=person_entities_view1,
        person_entities_view2=person_entities_view2,
        movies=movies,
        people=people,
    )

"""Canonical SQL forms of every query the datasets and examples hand-build.

Each SQL string here parses, binds and lowers (via :mod:`repro.sql`) to an
AST that is *fingerprint-identical* to the corresponding hand-built query in
:mod:`repro.datasets.academic`, :mod:`repro.datasets.imdb`,
:mod:`repro.datasets.synthetic` and the Figure 1 quickstart --
:func:`catalog_self_check` asserts exactly that and is run by the golden test
suite and by ``python -m repro.sql --self-test``.

The strings double as documentation of the paper's workloads: this is what
the scenarios look like when a client poses them over the JSON API as
``{"sql": "SELECT ..."}`` specs.
"""

from __future__ import annotations

from repro.matching.attribute_match import matching
from repro.relational.executor import Database


def figure1_databases():
    """The Figure 1 / quickstart pair: (db_left, db_right, attribute_matches)."""
    db1 = Database("D1")
    db1.add_records(
        "D1",
        [
            {"Program": "Accounting", "Degree": "B.S."},
            {"Program": "CS", "Degree": "B.A."},
            {"Program": "CS", "Degree": "B.S."},
            {"Program": "ECE", "Degree": "B.S."},
            {"Program": "EE", "Degree": "B.S."},
            {"Program": "Management", "Degree": "B.A."},
            {"Program": "Design", "Degree": "B.A."},
        ],
    )
    db2 = Database("D2")
    db2.add_records(
        "D2",
        [
            {"Univ": "A", "Major": "Accounting"},
            {"Univ": "A", "Major": "CSE"},
            {"Univ": "A", "Major": "ECE"},
            {"Univ": "A", "Major": "EE"},
            {"Univ": "A", "Major": "Management"},
            {"Univ": "A", "Major": "Design"},
            {"Univ": "B", "Major": "Art"},
        ],
    )
    return db1, db2, matching(("Program", "Major"))


def figure1_sql() -> dict[str, str]:
    """SQL for the Figure 1 quickstart queries (Q1 vs Q2)."""
    return {
        "Q1": "SELECT COUNT(Program) FROM D1",
        "Q2": "SELECT COUNT(Major) FROM D2 WHERE Univ = 'A'",
    }


def _quoted(value: str) -> str:
    """A SQL string literal with embedded quotes doubled (``O'Brien``)."""
    return "'" + str(value).replace("'", "''") + "'"


def academic_sql(university: str = "UMass-Amherst") -> dict[str, str]:
    """SQL for the academic scenario (listing COUNT vs statistics SUM)."""
    return {
        "Q1": "SELECT COUNT(Major) FROM Major",
        "Q2": (
            "SELECT SUM(bach_degr) FROM School JOIN Stats ON School.ID = Stats.ID "
            f"WHERE Univ_name = {_quoted(university)}"
        ),
    }


def synthetic_sql() -> dict[str, str]:
    """SQL for the Section 5.3 synthetic generator (both sides are SUMs)."""
    return {
        "Q1": "SELECT SUM(val) FROM Table",
        "Q2": "SELECT SUM(val) FROM Table",
    }


# ---------------------------------------------------------------------------
# IMDb templates Q1-Q10 (Section 5.1.1).
# ---------------------------------------------------------------------------

def _movies_with_info(info_type: str, info: str | None = None) -> str:
    """View 2: the movies carrying a MovieInfo row of the given type/value.

    Nested single-condition subqueries mirror how the hand-built AST stacks
    two Select nodes when both the type and the value are filtered.
    """
    inner = f"SELECT * FROM MovieInfo WHERE info_type = {_quoted(info_type)}"
    if info is not None:
        inner = f"SELECT * FROM ({inner}) WHERE info = {_quoted(info)}"
    return inner


def _numeric_template(function: str, v1_attr: str, info_type: str, year: int):
    v1 = f"SELECT {function}({v1_attr}) FROM Movie WHERE release_year = {year}"
    v2 = (
        f"SELECT {function}(info) FROM Movie "
        f"JOIN ({_movies_with_info(info_type)}) AS mi ON Movie.m_id = mi.m_id "
        f"WHERE release_year = {year}"
    )
    return v1, v2


def imdb_sql(template: str, param) -> dict[str, str]:
    """SQL for one IMDb query template, keyed ``{"v1": ..., "v2": ...}``."""
    if template == "Q1":
        v1 = (
            "SELECT DISTINCT firstname, lastname "
            f"FROM (SELECT * FROM Movie WHERE release_year = {param} "
            "AND genre = 'Short') AS m "
            "JOIN MovieActor ON m.movie_id = MovieActor.movie_id "
            "JOIN Actor ON MovieActor.actor_id = Actor.actor_id"
        )
        v2 = (
            "SELECT DISTINCT name "
            "FROM (SELECT * FROM Movie "
            f"JOIN ({_movies_with_info('genre', 'Short')}) AS mi "
            "ON Movie.m_id = mi.m_id "
            f"WHERE release_year = {param}) AS mv "
            "JOIN MoviePerson ON mv.m_id = MoviePerson.m_id "
            "JOIN Person ON MoviePerson.p_id = Person.p_id"
        )
    elif template == "Q2":
        v1 = (
            "SELECT DISTINCT title, release_year FROM Movie "
            "JOIN MovieDirector ON Movie.movie_id = MovieDirector.movie_id "
            f"JOIN (SELECT * FROM Director WHERE dob = {param}) AS d "
            "ON MovieDirector.director_id = d.director_id"
        )
        v2 = (
            "SELECT DISTINCT title, release_year FROM Movie "
            "JOIN MoviePerson ON Movie.m_id = MoviePerson.m_id "
            f"JOIN (SELECT * FROM Person WHERE dob = {param}) AS p "
            "ON MoviePerson.p_id = p.p_id"
        )
    elif template in ("Q3", "Q4"):
        info_type, info = ("genre", "Comedy") if template == "Q3" else ("country", "USA")
        column = "genre" if template == "Q3" else "country"
        v1 = (
            f"SELECT COUNT(title) FROM Movie WHERE release_year = {param} "
            f"AND {column} = {_quoted(info)}"
        )
        v2 = (
            "SELECT COUNT(title) FROM Movie "
            f"JOIN ({_movies_with_info(info_type, info)}) AS mi "
            "ON Movie.m_id = mi.m_id "
            f"WHERE release_year = {param}"
        )
    elif template in ("Q5", "Q6", "Q7", "Q8", "Q9"):
        function, v1_attr, info_type = {
            "Q5": ("SUM", "gross", "gross"),
            "Q6": ("MAX", "gross", "gross"),
            "Q7": ("MAX", "runtimes", "runtime"),
            "Q8": ("AVG", "gross", "gross"),
            "Q9": ("AVG", "runtimes", "runtime"),
        }[template]
        v1, v2 = _numeric_template(function, v1_attr, info_type, param)
    elif template == "Q10":
        v1 = (
            "SELECT DISTINCT firstname, lastname FROM Actor WHERE gender = 'F' "
            "AND (firstname, lastname) NOT IN ("
            f"SELECT * FROM (SELECT * FROM Movie WHERE genre = {_quoted(param)}) AS m "
            "JOIN MovieActor ON m.movie_id = MovieActor.movie_id "
            "JOIN Actor ON MovieActor.actor_id = Actor.actor_id)"
        )
        v2 = (
            "SELECT DISTINCT name FROM Person WHERE gender = 'F' "
            "AND name NOT IN ("
            "SELECT * FROM Movie "
            f"JOIN ({_movies_with_info('genre', param)}) AS mi "
            "ON Movie.m_id = mi.m_id "
            "JOIN MoviePerson ON Movie.m_id = MoviePerson.m_id "
            "JOIN Person ON MoviePerson.p_id = Person.p_id)"
        )
    else:
        raise ValueError(f"unknown IMDb template {template!r}")
    return {"v1": v1, "v2": v2}


# ---------------------------------------------------------------------------
# Enumeration: every catalog query with its database.
# ---------------------------------------------------------------------------

def catalog_queries():
    """Yield ``(label, query, db)`` for every dataset catalog query.

    One enumeration shared by every consumer that must cover "all catalog
    queries" (the planner's plan smoke, equivalence suites, ...), so new
    scenarios added here are picked up everywhere at once.  Mirrors the
    pairs :func:`catalog_self_check` walks: Figure 1, academic (UMass),
    synthetic, and all ten IMDb view templates (both sides).
    """
    from repro.datasets.academic import generate_academic_pair, umass_config
    from repro.datasets.imdb import generate_imdb_workload
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
    from repro.relational.expressions import col
    from repro.relational.query import Scan, count_query

    db1, db2, _ = figure1_databases()
    yield "figure1/Q1", count_query("Q1", Scan("D1"), attribute="Program"), db1
    yield (
        "figure1/Q2",
        count_query("Q2", Scan("D2"), predicate=(col("Univ") == "A"), attribute="Major"),
        db2,
    )

    academic = generate_academic_pair(umass_config())
    yield "academic/Q1", academic.query_left, academic.db_left
    yield "academic/Q2", academic.query_right, academic.db_right

    synthetic = generate_synthetic_pair(SyntheticConfig(num_tuples=30, seed=3))
    yield "synthetic/Q1", synthetic.query_left, synthetic.db_left
    yield "synthetic/Q2", synthetic.query_right, synthetic.db_right

    workload = generate_imdb_workload()
    year = workload.years_with_movies()[0]
    for template in workload.TEMPLATES:
        param = "Drama" if template == "Q10" else year
        pair = workload.pair(template, param)
        yield f"imdb/{template}/v1", pair.query_left, pair.db_left
        yield f"imdb/{template}/v2", pair.query_right, pair.db_right


# ---------------------------------------------------------------------------
# Self check: every SQL form lowers to the hand-built AST.
# ---------------------------------------------------------------------------

def catalog_self_check() -> str:
    """Assert fingerprint identity of every catalog query; returns a summary.

    For each scenario the check goes both ways: the SQL string must lower to
    the hand-built AST, and ``to_sql`` of the hand-built AST must re-parse to
    it as well.
    """
    from repro.sql import parse_query, query_to_sql

    checked = 0

    def check(sql: str, query, db) -> None:
        nonlocal checked
        parsed = parse_query(sql, db, name=query.name)
        if parsed.fingerprint() != query.fingerprint():
            raise AssertionError(
                f"SQL form of {query.name} lowers to a different AST:\n"
                f"  sql:   {sql}\n  got:   {parsed.root!r}\n  want:  {query.root!r}"
            )
        printed = query_to_sql(query)
        reparsed = parse_query(printed, db, name=query.name)
        if reparsed.fingerprint() != query.fingerprint():
            raise AssertionError(
                f"to_sql of {query.name} does not round trip:\n"
                f"  printed: {printed}\n  got:     {reparsed.root!r}"
            )
        checked += 1

    # Figure 1 / quickstart.
    from repro.relational.expressions import col
    from repro.relational.query import Scan, count_query

    db1, db2, _ = figure1_databases()
    sqls = figure1_sql()
    check(sqls["Q1"], count_query("Q1", Scan("D1"), attribute="Program"), db1)
    check(
        sqls["Q2"],
        count_query("Q2", Scan("D2"), predicate=(col("Univ") == "A"), attribute="Major"),
        db2,
    )

    # Academic (UMass configuration).
    from repro.datasets.academic import generate_academic_pair, umass_config

    config = umass_config()
    pair = generate_academic_pair(config)
    sqls = academic_sql(config.university)
    check(sqls["Q1"], pair.query_left, pair.db_left)
    check(sqls["Q2"], pair.query_right, pair.db_right)

    # Synthetic.
    from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair

    pair = generate_synthetic_pair(SyntheticConfig(num_tuples=30, seed=3))
    sqls = synthetic_sql()
    check(sqls["Q1"], pair.query_left, pair.db_left)
    check(sqls["Q2"], pair.query_right, pair.db_right)

    # IMDb: every template, with a year that has movies / a concrete genre.
    from repro.datasets.imdb import generate_imdb_workload

    workload = generate_imdb_workload()
    year = workload.years_with_movies()[0]
    for template in workload.TEMPLATES:
        param = "Drama" if template == "Q10" else year
        dataset_pair = workload.pair(template, param)
        sqls = imdb_sql(template, param)
        check(sqls["v1"], dataset_pair.query_left, workload.db_view1)
        check(sqls["v2"], dataset_pair.query_right, workload.db_view2)

    return f"{checked} SQL forms match their hand-built ASTs (both directions)"

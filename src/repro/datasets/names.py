"""Deterministic pools of realistic academic program names.

The academic generator needs a few hundred distinct program names plus
synonym/rename variants to exercise the record-linkage step the same way the
real UMass/OSU/NCES data does (exact matches, partially overlapping names, and
"hard" renames that token-based similarity cannot recover).
"""

from __future__ import annotations

BASE_FIELDS = [
    "Accounting", "Aerospace Engineering", "African American Studies", "Agricultural Economics",
    "Animal Science", "Anthropology", "Applied Mathematics", "Architecture", "Art History",
    "Astronomy", "Biochemistry", "Biology", "Biomedical Engineering", "Biostatistics",
    "Botany", "Business Administration", "Chemical Engineering", "Chemistry",
    "Civil Engineering", "Classics", "Communication", "Comparative Literature",
    "Computer Engineering", "Computer Science", "Construction Management", "Criminal Justice",
    "Dance", "Data Science", "Dietetics", "Earth Science", "Ecology", "Economics",
    "Education", "Electrical Engineering", "English", "Entomology", "Environmental Science",
    "Equine Management", "Exercise Science", "Fashion Design", "Film Studies", "Finance",
    "Food Science", "Foodservice Systems Administration", "Forestry", "French", "Genetics",
    "Geography", "Geology", "German", "Graphic Design", "History", "Horticulture",
    "Hospitality Management", "Human Development", "Industrial Engineering",
    "Information Systems", "Interior Design", "International Relations", "Italian",
    "Japanese", "Journalism", "Kinesiology", "Landscape Architecture", "Linguistics",
    "Management", "Marine Biology", "Marketing", "Materials Science", "Mathematics",
    "Mechanical Engineering", "Microbiology", "Music", "Natural Resources", "Neuroscience",
    "Nursing", "Nutrition", "Oceanography", "Operations Management", "Philosophy",
    "Physics", "Plant Science", "Political Science", "Portuguese", "Psychology",
    "Public Health", "Public Policy", "Religious Studies", "Russian", "Social Work",
    "Sociology", "Soil Science", "Spanish", "Sport Management", "Statistics",
    "Sustainable Agriculture", "Theatre", "Turfgrass Management", "Urban Planning",
    "Veterinary Science", "Wildlife Conservation", "Womens Studies", "Zoology",
]

MODIFIERS = [
    "", "Applied", "Environmental", "Computational", "Global", "Molecular", "Industrial",
    "Clinical", "Digital", "Comparative",
]

SUFFIXES = [
    "", "Studies", "Sciences", "Technology", "Education", "Administration", "Policy",
]

# Hard renames: the two datasets use entirely different wording for the same
# program (token similarity is near zero), mirroring the paper's observation
# about matches like "Foodservice Systems Administration" vs "Food Business
# Management" being absent from the initial mapping.
HARD_RENAMES = {
    "Foodservice Systems Administration": "Food Business Management",
    "Exercise Science": "Kinesiology and Movement",
    "Criminal Justice": "Law and Public Safety",
    "Communication": "Media Arts",
    "Human Development": "Family Studies",
    "Natural Resources": "Conservation Stewardship",
    "Dietetics": "Clinical Nutrition Practice",
    "Equine Management": "Horse Husbandry",
    "Hospitality Management": "Resort and Lodging Operations",
    "Theatre": "Dramatic Arts",
    "Turfgrass Management": "Groundskeeping Science",
    "Fashion Design": "Apparel Merchandising",
    "Sport Management": "Athletics Administration",
    "Journalism": "News Reporting and Writing",
    "Social Work": "Community Welfare Practice",
}

# Medium renames keep some token overlap, so the initial mapping assigns them a
# low-but-nonzero probability.
MEDIUM_RENAME_SUFFIXES = [
    "and Society", "and Information Science", "and Applied Research", "Concentration",
    "and Policy", "Sciences", "and Technology", "Management",
]

DEGREES_BACHELOR = ["B.S.", "B.A."]
DEGREE_ASSOCIATE = "Associate degree"

OTHER_UNIVERSITIES = [
    ("U002", "State College of the North", "Northfield"),
    ("U003", "Riverside Technical University", "Riverside"),
    ("U004", "Lakeshore University", "Lakeview"),
    ("U005", "Eastern Plains University", "Plainsboro"),
]


def program_name_pool(count: int) -> list[str]:
    """A deterministic pool of ``count`` distinct program names.

    Plain field names come first; later names add modifiers and suffixes in a
    round-robin fashion so that decorated names do not all share the same
    decorating token (which would flood the record-linkage step with spurious
    candidate matches).
    """
    names: list[str] = []
    seen: set[str] = set()

    def push(name: str) -> bool:
        if name not in seen:
            seen.add(name)
            names.append(name)
        return len(names) >= count

    for base in BASE_FIELDS:
        if push(base):
            return names
    decorations = [(modifier, suffix) for suffix in SUFFIXES for modifier in MODIFIERS]
    decorations = [d for d in decorations if d != ("", "")]
    for round_index in range(len(decorations)):
        for base_index, base in enumerate(BASE_FIELDS):
            modifier, suffix = decorations[(base_index + round_index) % len(decorations)]
            pieces = [piece for piece in (modifier, base, suffix) if piece]
            if push(" ".join(pieces)):
                return names
    raise ValueError(f"cannot generate {count} distinct program names")

"""Program-variant run generator: one tax pipeline, N buggy implementations.

The run-diff workload (:mod:`repro.runs`) needs disagreeing runs of "the same
program" with a gold standard known by construction.  This generator
reproduces the classic lab shape -- one per-row tax computation implemented
several ways, each variant carrying one injected divergence bug:

* ``single_thread``     -- the reference implementation (exact integer-cent
  arithmetic, round-half-even);
* ``vectorized``        -- **rounding-mode bug**: rounds half-up instead of
  half-even.  Rows are seeded so that exact half-cent amounts occur (incomes
  engineered per region rate with an even floor), making the two modes
  genuinely diverge;
* ``shared_state``      -- **stale-shared-state bug**: every
  ``stale_stride``-th row reads the *previous* row's region rate out of the
  shared accumulator (regions cycle, so the stale rate always differs);
* ``async_event_loop``  -- **dropped-batch bug**: one whole batch of rows is
  never awaited, so its ids are missing from the output.

Every divergence set is *computed*, not assumed: the generator runs both the
reference and the buggy arithmetic and records which ids differ, so the gold
standard stays honest even where a bug happens to produce the right answer.

Outputs are row records ``{id, region, income, tax}``; :meth:`VariantRuns.write`
emits one NDJSON run file plus a declared-schema sidecar per variant, the
exact on-disk shape :func:`repro.runs.loader.load_run` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
import json
import random

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema

#: Per-region tax rates as exact rationals (numerator per 100).  Numerators
#: are coprime with 100 so exact half-cent products exist for every region
#: (``income_cents * rate ≡ 50 (mod 100)`` is solvable).
RATES: dict[str, int] = {"north": 7, "south": 9, "east": 11, "west": 13}

VARIANTS: tuple[str, ...] = (
    "single_thread",
    "vectorized",
    "shared_state",
    "async_event_loop",
)

RUN_SCHEMA = Schema(
    [
        Attribute("id", DataType.INTEGER),
        Attribute("region", DataType.STRING),
        Attribute("income", DataType.FLOAT),
        Attribute("tax", DataType.FLOAT),
    ]
)


@dataclass(frozen=True)
class VariantsConfig:
    """Knobs of the variant-run generator (all divergence is seeded)."""

    num_rows: int = 200
    seed: int = 7
    batch_size: int = 16       # async variant processes rows in batches
    dropped_batch: int = 3     # which batch the async variant loses
    stale_stride: int = 23     # shared_state reads a stale rate every Nth row
    half_cent_stride: int = 9  # seed an exact half-cent row every Nth row

    def __post_init__(self):
        if self.num_rows < 2:
            raise ValueError("variants scenario needs at least 2 rows")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.dropped_batch < 0:
            raise ValueError("dropped_batch must be non-negative")
        if self.stale_stride < 2 or self.half_cent_stride < 2:
            raise ValueError("strides must be at least 2")


def _round_half_even(numerator: int, denominator: int) -> int:
    """Banker's rounding of an exact rational (the reference rounding mode)."""
    quotient, remainder = divmod(numerator, denominator)
    twice = 2 * remainder
    if twice > denominator or (twice == denominator and quotient % 2 == 1):
        quotient += 1
    return quotient


def _round_half_up(numerator: int, denominator: int) -> int:
    """Round-half-up -- the vectorized variant's (buggy) rounding mode."""
    quotient, remainder = divmod(numerator, denominator)
    if 2 * remainder >= denominator:
        quotient += 1
    return quotient


def _half_cent_income(rate: int, base_cents: int) -> int:
    """An income near ``base_cents`` whose tax lands on an exact half cent
    with an *even* floor, so half-even and half-up provably disagree."""
    # Solve income * rate ≡ 50 (mod 100); rate is coprime with 100.
    residue = (50 * pow(rate, -1, 100)) % 100
    income = base_cents - (base_cents % 100) + residue
    if income <= 0:
        income += 100
    # Each +100 step adds `rate` (odd) to the floor, flipping its parity.
    if (income * rate - 50) // 100 % 2 == 1:
        income += 100
    return income


@dataclass
class VariantRuns:
    """The generated scenario: per-variant records plus the computed gold."""

    config: VariantsConfig
    runs: dict[str, list[dict]]
    #: ids whose value diverges from single_thread, per variant (computed).
    divergent_ids: dict[str, set[int]] = field(default_factory=dict)
    #: ids missing from the variant's output entirely (computed).
    missing_ids: dict[str, set[int]] = field(default_factory=dict)
    key: tuple[str, ...] = ("id",)
    compare: str = "tax"

    def relation(self, variant: str) -> Relation:
        return Relation.from_records(self.runs[variant], RUN_SCHEMA, name=variant)

    def sidecar_spec(self) -> dict:
        return {
            "columns": [
                {"name": attribute.name, "type": attribute.dtype.value}
                for attribute in RUN_SCHEMA
            ],
            "key": list(self.key),
        }

    def write(self, directory: str | Path) -> dict[str, Path]:
        """Emit one ``<variant>.ndjson`` + ``<variant>.schema.json`` per run."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        sidecar = json.dumps(self.sidecar_spec(), indent=2) + "\n"
        paths: dict[str, Path] = {}
        for variant, records in self.runs.items():
            path = directory / f"{variant}.ndjson"
            with path.open("w") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
            (directory / f"{variant}.schema.json").write_text(sidecar)
            paths[variant] = path
        return paths

    def expected_kinds(self, variant: str) -> dict[str, set]:
        """The aligner-facing gold for ``single_thread`` vs ``variant``:
        which keys must classify as which disagreement kind."""
        return {
            "value_mismatch": {(i,) for i in self.divergent_ids[variant]},
            "missing_in_b": {(i,) for i in self.missing_ids[variant]},
        }


def generate_variant_runs(config: VariantsConfig | None = None) -> VariantRuns:
    """Run all variants over one seeded row stream; gold sets are computed."""
    config = config or VariantsConfig()
    rng = random.Random(config.seed)
    regions = sorted(RATES)

    # The shared input stream: (id, region, income_cents).
    inputs: list[tuple[int, str, int]] = []
    for i in range(config.num_rows):
        region = regions[i % len(regions)]
        income_cents = rng.randrange(20_000, 200_000)
        if i % config.half_cent_stride == 0:
            income_cents = _half_cent_income(RATES[region], income_cents)
        inputs.append((i, region, income_cents))

    def record(i: int, region: str, income_cents: int, tax_cents: int) -> dict:
        return {
            "id": i,
            "region": region,
            "income": income_cents / 100,
            "tax": tax_cents / 100,
        }

    reference = [
        record(i, region, cents, _round_half_even(cents * RATES[region], 100))
        for i, region, cents in inputs
    ]

    vectorized = [
        record(i, region, cents, _round_half_up(cents * RATES[region], 100))
        for i, region, cents in inputs
    ]

    shared_state = []
    previous_rate = None
    for i, region, cents in inputs:
        rate = RATES[region]
        if i > 0 and i % config.stale_stride == 0 and previous_rate is not None:
            rate = previous_rate  # the bug: reads the accumulator pre-update
        shared_state.append(record(i, region, cents, _round_half_even(cents * rate, 100)))
        previous_rate = RATES[region]

    # Wrap the batch index so every config drops a real, in-range batch.
    num_batches = max(1, (config.num_rows + config.batch_size - 1) // config.batch_size)
    dropped_start = (config.dropped_batch % num_batches) * config.batch_size
    dropped = set(range(dropped_start, min(dropped_start + config.batch_size, config.num_rows)))
    async_event_loop = [row for row in reference if row["id"] not in dropped]

    runs = {
        "single_thread": reference,
        "vectorized": vectorized,
        "shared_state": shared_state,
        "async_event_loop": async_event_loop,
    }

    by_id = {row["id"]: row for row in reference}
    divergent: dict[str, set[int]] = {}
    missing: dict[str, set[int]] = {}
    for variant, records in runs.items():
        present = {row["id"] for row in records}
        missing[variant] = {i for i, _, _ in inputs if i not in present}
        divergent[variant] = {
            row["id"] for row in records if row["tax"] != by_id[row["id"]]["tax"]
        }

    # The seeding must actually produce each bug's signature divergence.
    if not divergent["vectorized"]:
        raise AssertionError("vectorized rounding bug produced no divergence")
    if not divergent["shared_state"]:
        raise AssertionError("shared_state staleness produced no divergence")
    if not missing["async_event_loop"]:
        raise AssertionError("async variant dropped no rows")

    return VariantRuns(config=config, runs=runs, divergent_ids=divergent, missing_ids=missing)

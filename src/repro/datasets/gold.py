"""Gold standards and dataset-pair bundles.

Every generator in this subpackage knows the true correspondence between the
two datasets it produces (each base row carries a hidden *entity id*).  From
that correspondence and the canonical relations of a concrete problem we can
mechanically derive the gold standard:

* **gold evidence**: pairs of canonical tuples whose entity sets intersect;
* **gold provenance explanations**: canonical tuples with no counterpart;
* **gold value explanations**: connected components (under the gold evidence)
  whose left/right impact totals disagree.

The gold evidence also serves as the labeled sample for the
similarity-to-probability calibration of Section 5.1.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.core.canonical import CanonicalRelation
from repro.core.problem import ExplainProblem, build_problem
from repro.core.scoring import Priors
from repro.graphs.bipartite import Side
from repro.matching.attribute_match import AttributeMatching
from repro.relational.executor import Database
from repro.relational.query import Query


@dataclass
class GoldStandard:
    """The reference explanations and evidence of one dataset pair + query pair."""

    evidence_pairs: set[tuple[str, str]] = field(default_factory=set)
    provenance: set[tuple[str, str]] = field(default_factory=set)
    value: set[tuple[str, str]] = field(default_factory=set)

    @property
    def num_explanations(self) -> int:
        return len(self.provenance) + len(self.value)

    def explanation_identities(self) -> set[tuple[str, str, str]]:
        identities = {("provenance",) + identity for identity in self.provenance}
        identities |= {("value",) + identity for identity in self.value}
        return identities

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GoldStandard({len(self.evidence_pairs)} evidence pairs, "
            f"{len(self.provenance)} provenance + {len(self.value)} value explanations)"
        )


def _entities_of(
    relation: CanonicalRelation, entity_ids: Mapping[str, object]
) -> dict[str, frozenset]:
    """Entity ids of each canonical tuple, resolved through provenance lineage."""
    result: dict[str, frozenset] = {}
    provenance_by_key = relation.provenance.by_key() if relation.provenance else {}
    for canonical_tuple in relation:
        entities: set = set()
        for member_key in canonical_tuple.members:
            member = provenance_by_key.get(member_key)
            if member is None:
                continue
            for base_row in member.lineage:
                entity = entity_ids.get(base_row)
                if entity is not None:
                    entities.add(entity)
        result[canonical_tuple.key] = frozenset(entities)
    return result


def build_gold_from_entities(
    canonical_left: CanonicalRelation,
    canonical_right: CanonicalRelation,
    entity_ids_left: Mapping[str, object],
    entity_ids_right: Mapping[str, object],
    *,
    impact_tolerance: float = 1e-6,
) -> GoldStandard:
    """Derive the gold standard from the hidden entity correspondence."""
    left_entities = _entities_of(canonical_left, entity_ids_left)
    right_entities = _entities_of(canonical_right, entity_ids_right)

    right_index: dict[object, list[str]] = {}
    for key, entities in right_entities.items():
        for entity in entities:
            right_index.setdefault(entity, []).append(key)

    gold = GoldStandard()
    matched_left: set[str] = set()
    matched_right: set[str] = set()
    for left_key, entities in left_entities.items():
        for entity in entities:
            for right_key in right_index.get(entity, ()):
                gold.evidence_pairs.add((left_key, right_key))
                matched_left.add(left_key)
                matched_right.add(right_key)

    for key in canonical_left.keys():
        if key not in matched_left:
            gold.provenance.add((Side.LEFT.value, key))
    for key in canonical_right.keys():
        if key not in matched_right:
            gold.provenance.add((Side.RIGHT.value, key))

    # Components of the gold evidence with mismatched impact totals.
    parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(node):
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a, b):
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for key in canonical_left.keys():
        parent.setdefault((Side.LEFT.value, key), (Side.LEFT.value, key))
    for key in canonical_right.keys():
        parent.setdefault((Side.RIGHT.value, key), (Side.RIGHT.value, key))
    for left_key, right_key in gold.evidence_pairs:
        union((Side.LEFT.value, left_key), (Side.RIGHT.value, right_key))

    components: dict[tuple[str, str], dict] = {}
    for relation, side in ((canonical_left, Side.LEFT), (canonical_right, Side.RIGHT)):
        for canonical_tuple in relation:
            identity = (side.value, canonical_tuple.key)
            if identity in gold.provenance:
                continue
            root = find(identity)
            bucket = components.setdefault(root, {"L": 0.0, "R": 0.0, "members": []})
            bucket[side.value] += canonical_tuple.impact
            bucket["members"].append(identity)

    for bucket in components.values():
        if abs(bucket["L"] - bucket["R"]) > impact_tolerance:
            gold.value.update(bucket["members"])
    return gold


@dataclass
class DatasetPair:
    """A generated pair of datasets + queries, with its hidden correspondence.

    ``entity_ids_left`` / ``entity_ids_right`` map base-row identifiers
    (``"<relation>:<position>"``) to the hidden entity they represent; the gold
    standard is derived from them once the problem's canonical relations exist.
    """

    name: str
    db_left: Database
    db_right: Database
    query_left: Query
    query_right: Query
    attribute_matches: AttributeMatching
    entity_ids_left: dict[str, object] = field(default_factory=dict)
    entity_ids_right: dict[str, object] = field(default_factory=dict)
    description: str = ""
    default_min_similarity: float = 0.0

    def build_problem(
        self,
        *,
        priors: Priors = Priors(),
        calibrate_with_gold: bool = True,
        num_buckets: int = 50,
        min_similarity: float | None = None,
        min_match_probability: float = 0.0,
    ) -> tuple[ExplainProblem, GoldStandard]:
        """Stage 1 over the generated data, plus the resolved gold standard.

        The initial mapping is calibrated against the gold evidence pairs (the
        paper labels a sample of matches with its gold standard); pass
        ``calibrate_with_gold=False`` to fall back to raw similarities.
        """
        if min_similarity is None:
            min_similarity = self.default_min_similarity
        # First build the problem without a mapping to obtain canonical keys,
        # then (optionally) rebuild the mapping calibrated with the gold pairs.
        problem = build_problem(
            self.query_left,
            self.db_left,
            self.query_right,
            self.db_right,
            attribute_matches=self.attribute_matches,
            priors=priors,
            num_buckets=num_buckets,
            min_similarity=min_similarity,
            min_match_probability=min_match_probability,
        )
        gold = build_gold_from_entities(
            problem.canonical_left,
            problem.canonical_right,
            self.entity_ids_left,
            self.entity_ids_right,
        )
        if calibrate_with_gold:
            problem = build_problem(
                self.query_left,
                self.db_left,
                self.query_right,
                self.db_right,
                attribute_matches=self.attribute_matches,
                labeled_pairs=gold.evidence_pairs,
                priors=priors,
                num_buckets=num_buckets,
                min_similarity=min_similarity,
                min_match_probability=min_match_probability,
            )
        return problem, gold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatasetPair({self.name})"

"""The synthetic data generator of Section 5.3.

Both datasets share the schema ``Table(id, match_attr, val)`` and the query
``SELECT SUM(val) FROM Table``.  The generator:

1. creates ``n`` tuples with random attribute values and adds them to both
   datasets (``match_attr`` is a phrase of 5 random words drawn from a
   vocabulary of ``v`` words; ``val`` is a random integer in [1, 10]);
2. randomly drops ``d`` percent of the tuples (from one side each);
3. randomly corrupts the ``val`` attribute of ``d`` percent of the tuples.

The dropped and corrupted tuples are the optimal explanations; the optimal
evidence follows from the shared construction, so the gold standard is known
exactly.  The vocabulary size controls how many spurious candidate matches the
record-linkage step produces (smaller vocabularies mean denser match graphs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.gold import DatasetPair
from repro.matching.attribute_match import matching
from repro.relational.query import Scan, sum_query
from repro.relational.executor import Database


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the Section 5.3 generator."""

    num_tuples: int = 1000          # n
    difference_ratio: float = 0.2   # d
    vocabulary_size: int = 1000     # v
    words_per_phrase: int = 5
    max_value: int = 10
    seed: int = 42

    def __post_init__(self):
        if self.num_tuples < 1:
            raise ValueError("num_tuples must be positive")
        if not 0.0 <= self.difference_ratio < 1.0:
            raise ValueError("difference_ratio must be in [0, 1)")
        if self.vocabulary_size <= self.words_per_phrase:
            raise ValueError("vocabulary_size must exceed words_per_phrase")


def _vocabulary(size: int) -> list[str]:
    """A deterministic vocabulary of ``size`` pronounceable pseudo-words."""
    consonants = "bcdfghklmnprstvz"
    vowels = "aeiou"
    words = []
    index = 0
    while len(words) < size:
        pieces = []
        value = index
        for _ in range(3):
            pieces.append(consonants[value % len(consonants)])
            value //= len(consonants)
            pieces.append(vowels[value % len(vowels)])
            value //= len(vowels)
        words.append("".join(pieces))
        index += 1
    return words


def generate_synthetic_pair(config: SyntheticConfig | None = None) -> DatasetPair:
    """Generate a synthetic dataset pair with its gold correspondence."""
    config = config or SyntheticConfig()
    rng = random.Random(config.seed)
    vocabulary = _vocabulary(config.vocabulary_size)

    # Step 1: n shared tuples.
    base_tuples = []
    for index in range(config.num_tuples):
        phrase = " ".join(rng.choice(vocabulary) for _ in range(config.words_per_phrase))
        value = rng.randint(1, config.max_value)
        base_tuples.append({"id": index, "match_attr": phrase, "val": value})

    # Step 2: drop d% of the tuples (each dropped tuple disappears from one side).
    num_dropped = int(round(config.difference_ratio * config.num_tuples))
    dropped_indices = set(rng.sample(range(config.num_tuples), num_dropped)) if num_dropped else set()
    drop_from_left = {index for index in dropped_indices if rng.random() < 0.5}
    drop_from_right = dropped_indices - drop_from_left

    # Step 3: corrupt the val attribute of d% of the (remaining) tuples on one side.
    num_corrupted = int(round(config.difference_ratio * config.num_tuples))
    candidates = [i for i in range(config.num_tuples) if i not in dropped_indices]
    corrupted_indices = set(
        rng.sample(candidates, min(num_corrupted, len(candidates)))
    ) if num_corrupted else set()

    left_rows: list[dict] = []
    right_rows: list[dict] = []
    entity_ids_left: dict[str, object] = {}
    entity_ids_right: dict[str, object] = {}

    for record in base_tuples:
        index = record["id"]
        if index not in drop_from_left:
            entity_ids_left[f"Table:{len(left_rows)}"] = index
            left_rows.append(dict(record))
        if index not in drop_from_right:
            row = dict(record)
            if index in corrupted_indices:
                shift = rng.randint(1, config.max_value)
                row["val"] = ((row["val"] - 1 + shift) % config.max_value) + 1
            entity_ids_right[f"Table:{len(right_rows)}"] = index
            right_rows.append(row)

    db_left = Database("synthetic_left")
    db_left.add_records("Table", left_rows)
    db_right = Database("synthetic_right")
    db_right.add_records("Table", right_rows)

    query_left = sum_query("Q1", Scan("Table"), "val", description="Total value (dataset 1)")
    query_right = sum_query("Q2", Scan("Table"), "val", description="Total value (dataset 2)")

    return DatasetPair(
        name=(
            f"synthetic_n{config.num_tuples}_d{config.difference_ratio:g}_v{config.vocabulary_size}"
        ),
        db_left=db_left,
        db_right=db_right,
        query_left=query_left,
        query_right=query_right,
        attribute_matches=matching(("match_attr", "match_attr")),
        entity_ids_left=entity_ids_left,
        entity_ids_right=entity_ids_right,
        description=(
            f"Synthetic pair: n={config.num_tuples}, d={config.difference_ratio}, "
            f"v={config.vocabulary_size}"
        ),
    )

"""BART-style random error injection.

The paper introduces ~5% random errors into the two IMDb views with the BART
error-generation system.  This module reproduces the relevant behaviour:
given a list of record dictionaries, corrupt a fraction of the cells of the
selected attributes with type-appropriate perturbations (numeric offsets,
token drops, character swaps) and report exactly which cells were touched so
generators can fold the corruption into their gold standards when needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class CorruptionConfig:
    """How to corrupt a list of records."""

    rate: float = 0.05
    attributes: tuple[str, ...] = ()
    numeric_relative_error: float = 0.25
    numeric_absolute_error: float = 1.0
    seed: int = 13

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")


@dataclass
class CorruptionReport:
    """Which cells were corrupted and their original values."""

    cells: list[tuple[int, str, object, object]] = field(default_factory=list)

    def add(self, row: int, attribute: str, original, corrupted) -> None:
        self.cells.append((row, attribute, original, corrupted))

    @property
    def count(self) -> int:
        return len(self.cells)

    def rows(self) -> set[int]:
        return {row for row, *_ in self.cells}


def _corrupt_string(rng: random.Random, value: str) -> str:
    tokens = value.split()
    if len(tokens) > 1 and rng.random() < 0.5:
        # Drop one token.
        drop = rng.randrange(len(tokens))
        return " ".join(token for index, token in enumerate(tokens) if index != drop)
    # Swap two adjacent characters.
    if len(value) >= 2:
        position = rng.randrange(len(value) - 1)
        chars = list(value)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        return "".join(chars)
    return value + "x"


def _corrupt_numeric(rng: random.Random, value: float, config: CorruptionConfig) -> float:
    relative = value * config.numeric_relative_error * rng.uniform(0.2, 1.0)
    absolute = config.numeric_absolute_error * rng.choice([-1.0, 1.0])
    perturbation = relative * rng.choice([-1.0, 1.0]) + absolute
    corrupted = value + perturbation
    if isinstance(value, int):
        corrupted = int(round(corrupted))
        if corrupted == value:
            corrupted = value + rng.choice([-1, 1])
    return corrupted


def inject_errors(
    records: Sequence[dict],
    config: CorruptionConfig,
    *,
    rng: random.Random | None = None,
) -> tuple[list[dict], CorruptionReport]:
    """Corrupt a copy of ``records`` and report the touched cells."""
    rng = rng or random.Random(config.seed)
    attributes = config.attributes or tuple(records[0].keys()) if records else ()
    report = CorruptionReport()
    corrupted_records: list[dict] = []
    for row_index, record in enumerate(records):
        new_record = dict(record)
        for attribute in attributes:
            value = new_record.get(attribute)
            if value is None or rng.random() >= config.rate:
                continue
            if isinstance(value, bool):
                corrupted = not value
            elif isinstance(value, (int, float)):
                corrupted = _corrupt_numeric(rng, value, config)
            else:
                corrupted = _corrupt_string(rng, str(value))
            if corrupted != value:
                new_record[attribute] = corrupted
                report.add(row_index, attribute, value, corrupted)
        corrupted_records.append(new_record)
    return corrupted_records, report

"""Dataset generators with gold standards.

The paper evaluates on two real-world dataset families (Academic and IMDb) and
a synthetic generator.  The real data is not redistributable and was collected
from the web, so this subpackage provides deterministic generators that
reproduce the same *structure* of disagreements (missing tuples, double
counting across granularities, corrupted values) with a gold standard that is
known by construction:

* :mod:`repro.datasets.academic` -- UMass/OSU-style program listings vs. an
  NCES-style aggregated statistics table (Example 1 and Figure 4, top).
* :mod:`repro.datasets.imdb` -- a movie/person universe published as two views
  with different schemas, migration loss and ~5% injected errors, plus the 10
  query templates of Section 5.1.1 (Figure 4, bottom).
* :mod:`repro.datasets.synthetic` -- the Section 5.3 generator
  (``Table(id, match_attr, val)``, drop/corrupt ratios, vocabulary size).
* :mod:`repro.datasets.corruption` -- BART-style random error injection.
* :mod:`repro.datasets.variants` -- N seeded program variants of one tax
  pipeline with injected divergence bugs (rounding mode, stale shared state,
  dropped async batch), emitting the NDJSON run files the
  :mod:`repro.runs` workload diffs and explains.
* :mod:`repro.datasets.gold` -- gold standards and the
  :class:`~repro.datasets.gold.DatasetPair` bundle consumed by the evaluation
  harness.
"""

from repro.datasets.gold import DatasetPair, GoldStandard, build_gold_from_entities
from repro.datasets.academic import AcademicConfig, generate_academic_pair
from repro.datasets.imdb import IMDbConfig, IMDbWorkload, generate_imdb_workload
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.datasets.corruption import CorruptionConfig, inject_errors
from repro.datasets.variants import VariantRuns, VariantsConfig, generate_variant_runs

__all__ = [
    "VariantRuns",
    "VariantsConfig",
    "generate_variant_runs",
    "GoldStandard",
    "DatasetPair",
    "build_gold_from_entities",
    "AcademicConfig",
    "generate_academic_pair",
    "IMDbConfig",
    "IMDbWorkload",
    "generate_imdb_workload",
    "SyntheticConfig",
    "generate_synthetic_pair",
    "CorruptionConfig",
    "inject_errors",
]

"""Cost model: selectivity estimation and join-order search over ANALYZE stats.

:class:`CostModel` estimates output row counts for logical
:class:`~repro.relational.query.QueryNode` trees.  Without statistics it
reproduces the planner's original coarse heuristics *exactly* (so stats-off
plans are byte-identical to the PR 4 planner); with a
:class:`~repro.stats.statistics.DatabaseStats` attached to the database it
uses per-column distinct counts, null fractions and equi-depth histograms:

* equality predicates cost ``(1 - null_fraction) / distinct``;
* range predicates interpolate the column histogram;
* equi-join pairs cost ``1 / max(ndv_left, ndv_right)`` (null-rejecting pairs
  additionally discount NULL rows on both sides);
* column profiles propagate through Select/Project/Join/Union/Aggregate so
  join inputs that are themselves subtrees still estimate sensibly.

:func:`choose_join_order` is the planner's join-order search: exhaustive
left-deep dynamic programming (Selinger-style, ``C_out`` cost = the sum of
intermediate result sizes) up to :data:`DP_INPUT_LIMIT` inputs, greedy
smallest-intermediate-first beyond.  Orders only ever *reorder* execution --
the :class:`~repro.plan.physical.MultiJoinExec` operator restores the naive
interpreter's output order afterwards, so estimation errors can never change
results, only runtimes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.relational.expressions import (
    And,
    AttributeComparison,
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Or,
    TruePredicate,
)
from repro.relational.query import (
    Aggregate,
    Difference,
    Join,
    Project,
    QueryNode,
    Scan,
    Select,
    Union,
)
from repro.relational.schema import concat_names
from repro.stats.statistics import ColumnStats, DatabaseStats

# The stats-less fallbacks -- shared with (and identical to) the PR 4 planner
# heuristics, so un-analyzed databases plan exactly as before.
DEFAULT_SELECT_SELECTIVITY = 0.33
DEFAULT_BASE_ROWS = 1000

# Default selectivities when a predicate cannot be introspected against stats.
_DEFAULT_EQUALITY = 0.1
_DEFAULT_RANGE = 0.33
_DEFAULT_CONTAINS = 0.25

DP_INPUT_LIMIT = 7

_EQ_OPS = ("=", "==")
_NE_OPS = ("!=", "<>")


@dataclass(frozen=True)
class ColumnProfile:
    """Estimated distinct count / null fraction of one output column.

    ``stats`` carries the originating base column's full ANALYZE output
    (histogram included) when the column is traceable to a base relation.
    """

    distinct: float
    null_fraction: float
    stats: Optional[ColumnStats] = None

    def capped(self, rows: float) -> "ColumnProfile":
        if self.distinct <= rows:
            return self
        return ColumnProfile(max(1.0, rows), self.null_fraction, self.stats)


class CostModel:
    """Row-count and selectivity estimation for one database.

    One instance serves one lowering pass; estimates and column profiles are
    memoized by node identity (the pass holds the tree alive).
    """

    def __init__(self, db, statistics: DatabaseStats | None = None):
        self.db = db
        self.statistics = (
            statistics if statistics is not None else getattr(db, "statistics", None)
        )
        self._rows: dict[int, float] = {}
        self._profiles: dict[int, dict[str, ColumnProfile]] = {}
        # Memo keys are node identities; keep every memoized node alive so a
        # garbage-collected tree can never hand its addresses (and hence its
        # stale estimates) to a newly built one.
        self._memoized_nodes: list[QueryNode] = []

    @property
    def has_statistics(self) -> bool:
        return self.statistics is not None and len(self.statistics) > 0

    # -- row estimates --------------------------------------------------------------
    def estimated_rows(self, node: QueryNode) -> int:
        return max(0, int(round(self._estimate(node))))

    def _estimate(self, node: QueryNode) -> float:
        cached = self._rows.get(id(node))
        if cached is not None:
            return cached
        if self.has_statistics:
            try:
                value = self._estimate_with_stats(node)
            except Exception:
                value = self._estimate_heuristic(node)
        else:
            value = self._estimate_heuristic(node)
        self._rows[id(node)] = value
        self._memoized_nodes.append(node)
        return value

    def _estimate_heuristic(self, node: QueryNode) -> float:
        """The PR 4 planner heuristics, reproduced exactly for stats-off plans."""
        if isinstance(node, Scan):
            try:
                return float(len(self.db.relation(node.relation)))
            except Exception:
                return float(DEFAULT_BASE_ROWS)
        if isinstance(node, Select):
            return float(
                max(1, int(self._estimate(node.child) * DEFAULT_SELECT_SELECTIVITY))
            )
        if isinstance(node, Project):
            child = self._estimate(node.child)
            return float(max(1, int(child) // 2)) if node.distinct else child
        if isinstance(node, Join):
            left = self._estimate(node.left)
            right = self._estimate(node.right)
            if node.on:
                return max(left, right)
            if node.condition is not None:
                return float(max(1, int(left * right * DEFAULT_SELECT_SELECTIVITY)))
            return left * right
        if isinstance(node, Union):
            return float(sum(self._estimate(member) for member in node.inputs))
        if isinstance(node, Difference):
            return self._estimate(node.left)
        if isinstance(node, Aggregate):
            if node.group_by:
                return float(max(1, int(self._estimate(node.child)) // 3))
            return 1.0
        return float(DEFAULT_BASE_ROWS)

    def _estimate_with_stats(self, node: QueryNode) -> float:
        if isinstance(node, Scan):
            stats = self.statistics.relation(node.relation)
            if stats is not None:
                return float(stats.row_count)
            return self._estimate_heuristic(node)
        if isinstance(node, Select):
            child = self._estimate(node.child)
            selectivity = self.predicate_selectivity(
                node.predicate, self.profiles(node.child)
            )
            return child * selectivity
        if isinstance(node, Project):
            child = self._estimate(node.child)
            if not node.distinct:
                return child
            profiles = self.profiles(node.child)
            distinct = 1.0
            for name in node.attributes:
                profile = profiles.get(name)
                distinct *= max(1.0, profile.distinct) if profile else max(1.0, child)
                if distinct >= child:
                    return child
            return max(1.0, min(child, distinct))
        if isinstance(node, Join):
            left = self._estimate(node.left)
            right = self._estimate(node.right)
            result = left * right
            left_profiles = self.profiles(node.left)
            right_profiles = self.profiles(node.right)
            for position, (left_name, right_name) in enumerate(node.on):
                result *= equi_join_factor(
                    left_profiles.get(left_name),
                    right_profiles.get(right_name),
                    plain=position == 0,
                )
            if node.condition is not None:
                result *= self.predicate_selectivity(
                    node.condition, self.profiles(node)
                )
            return result
        if isinstance(node, Union):
            return float(sum(self._estimate(member) for member in node.inputs))
        if isinstance(node, Difference):
            return self._estimate(node.left)
        if isinstance(node, Aggregate):
            if not node.group_by:
                return 1.0
            child = self._estimate(node.child)
            profiles = self.profiles(node.child)
            groups = 1.0
            for name in node.group_by:
                profile = profiles.get(name)
                groups *= max(1.0, profile.distinct) if profile else max(1.0, child)
                if groups >= child:
                    return max(1.0, child)
            return max(1.0, min(child, groups))
        return self._estimate_heuristic(node)

    # -- column profiles ------------------------------------------------------------
    def profiles(self, node: QueryNode) -> dict[str, ColumnProfile]:
        """Per-output-column (distinct, null fraction) estimates for a node."""
        cached = self._profiles.get(id(node))
        if cached is not None:
            return cached
        try:
            value = self._profiles_of(node)
        except Exception:
            value = {}
        self._profiles[id(node)] = value
        self._memoized_nodes.append(node)
        return value

    def _profiles_of(self, node: QueryNode) -> dict[str, ColumnProfile]:
        if isinstance(node, Scan):
            rows = self._estimate(node)
            stats = (
                self.statistics.relation(node.relation) if self.has_statistics else None
            )
            if stats is None:
                schema = self.db.relation(node.relation).schema
                return {
                    name: ColumnProfile(max(1.0, rows), 0.0) for name in schema.names
                }
            return {
                column.name: ColumnProfile(
                    float(column.distinct), column.null_fraction, column
                )
                for column in stats.columns
            }
        if isinstance(node, Select):
            rows = self._estimate(node)
            return {
                name: profile.capped(rows)
                for name, profile in self.profiles(node.child).items()
            }
        if isinstance(node, Project):
            child = self.profiles(node.child)
            rows = self._estimate(node)
            return {
                name: child[name].capped(rows) for name in node.attributes if name in child
            }
        if isinstance(node, Join):
            left = self.profiles(node.left)
            right = self.profiles(node.right)
            left_names = tuple(left.keys())
            _, renamed = concat_names(left_names, tuple(right.keys()))
            combined = dict(left)
            for name, profile in right.items():
                combined[renamed[name]] = profile
            return combined
        if isinstance(node, Union):
            merged: dict[str, ColumnProfile] = {}
            rows = self._estimate(node)
            for member in node.inputs:
                for name, profile in self.profiles(member).items():
                    existing = merged.get(name)
                    if existing is None:
                        merged[name] = profile
                    else:
                        merged[name] = ColumnProfile(
                            min(rows, existing.distinct + profile.distinct),
                            (existing.null_fraction + profile.null_fraction) / 2,
                            existing.stats,
                        )
            return merged
        if isinstance(node, Difference):
            return self.profiles(node.left)
        if isinstance(node, Aggregate):
            rows = self._estimate(node)
            child = self.profiles(node.child)
            out = {
                name: child[name].capped(rows)
                for name in node.group_by
                if name in child
            }
            out[node.alias] = ColumnProfile(max(1.0, rows), 0.0)
            return out
        return {}

    # -- predicate selectivity --------------------------------------------------------
    def predicate_selectivity(
        self, predicate, profiles: dict[str, ColumnProfile]
    ) -> float:
        """Estimated fraction of rows satisfying ``predicate`` (clamped to [0, 1])."""
        return _clamp(self._selectivity(predicate, profiles))

    def _selectivity(self, predicate, profiles: dict[str, ColumnProfile]) -> float:
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, And):
            result = 1.0
            for child in predicate.children:
                result *= _clamp(self._selectivity(child, profiles))
            return result
        if isinstance(predicate, Or):
            miss = 1.0
            for child in predicate.children:
                miss *= 1.0 - _clamp(self._selectivity(child, profiles))
            return 1.0 - miss
        if isinstance(predicate, Not):
            return 1.0 - _clamp(self._selectivity(predicate.child, profiles))
        if isinstance(predicate, IsNull):
            profile = profiles.get(predicate.attribute)
            null_fraction = profile.null_fraction if profile else 0.1
            return (1.0 - null_fraction) if predicate.negate else null_fraction
        if isinstance(predicate, Membership):
            profile = profiles.get(predicate.attribute)
            if profile is None or profile.distinct <= 0:
                return _DEFAULT_EQUALITY
            hit = min(1.0, len(set(predicate.values)) / max(1.0, profile.distinct))
            return (1.0 - profile.null_fraction) * hit
        if isinstance(predicate, Contains):
            return _DEFAULT_CONTAINS
        if isinstance(predicate, AttributeComparison):
            if predicate.op in _EQ_OPS:
                left = profiles.get(predicate.left)
                right = profiles.get(predicate.right)
                return equi_join_factor(left, right, plain=False)
            return _DEFAULT_RANGE
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, profiles)
        return DEFAULT_SELECT_SELECTIVITY

    def _comparison_selectivity(
        self, predicate: Comparison, profiles: dict[str, ColumnProfile]
    ) -> float:
        profile = profiles.get(predicate.attribute)
        if profile is None:
            return _DEFAULT_EQUALITY if predicate.op in _EQ_OPS else _DEFAULT_RANGE
        non_null = 1.0 - profile.null_fraction
        if predicate.op in _EQ_OPS:
            return non_null / max(1.0, profile.distinct)
        if predicate.op in _NE_OPS:
            return non_null * (1.0 - 1.0 / max(1.0, profile.distinct))
        histogram = profile.stats.histogram if profile.stats is not None else None
        if histogram is None:
            return _DEFAULT_RANGE
        if predicate.op == "<":
            fraction = histogram.fraction_below(predicate.value, inclusive=False)
        elif predicate.op == "<=":
            fraction = histogram.fraction_below(predicate.value, inclusive=True)
        elif predicate.op == ">":
            below = histogram.fraction_below(predicate.value, inclusive=True)
            fraction = None if below is None else 1.0 - below
        elif predicate.op == ">=":
            below = histogram.fraction_below(predicate.value, inclusive=False)
            fraction = None if below is None else 1.0 - below
        else:
            return _DEFAULT_RANGE
        if fraction is None:
            return _DEFAULT_RANGE
        return non_null * fraction


def equi_join_factor(
    left: ColumnProfile | None, right: ColumnProfile | None, *, plain: bool
) -> float:
    """Selectivity of one equi-join key pair.

    ``plain`` marks the interpreter's first ``on`` pair, whose dictionary
    matching lets ``NULL = NULL`` hold; every further pair rejects NULLs on
    both sides, which the strict branch discounts.
    """
    if left is None or right is None:
        return _DEFAULT_EQUALITY
    factor = 1.0 / max(left.distinct, right.distinct, 1.0)
    if not plain:
        factor *= (1.0 - left.null_fraction) * (1.0 - right.null_fraction)
    return factor


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


# ---------------------------------------------------------------------------
# Join-order search
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JoinKeyConstraint:
    """One equi-key pair of the flattened join, endpoint-addressed.

    ``a``/``b`` address (input ordinal, column position) in the *original*
    left-to-right input order; ``plain`` records first-pair NULL-equality
    semantics (it also softens the estimated selectivity discount).
    """

    a_input: int
    a_col: int
    b_input: int
    b_col: int
    plain: bool = False

    def touches(self, index: int) -> bool:
        return self.a_input == index or self.b_input == index

    def endpoints(self) -> tuple[int, int]:
        return self.a_input, self.b_input


@dataclass(frozen=True)
class JoinInput:
    """Estimated shape of one flattened join input for the order search."""

    rows: float
    column_distinct: tuple[float, ...]
    column_null_fraction: tuple[float, ...] = ()
    label: str = ""

    def distinct(self, col: int) -> float:
        if 0 <= col < len(self.column_distinct):
            return max(1.0, self.column_distinct[col])
        return max(1.0, self.rows)

    def null_fraction(self, col: int) -> float:
        if 0 <= col < len(self.column_null_fraction):
            return self.column_null_fraction[col]
        return 0.0


def _constraint_factor(inputs: Sequence[JoinInput], constraint: JoinKeyConstraint) -> float:
    a = inputs[constraint.a_input]
    b = inputs[constraint.b_input]
    factor = 1.0 / max(
        a.distinct(constraint.a_col), b.distinct(constraint.b_col), 1.0
    )
    if not constraint.plain:
        factor *= (1.0 - a.null_fraction(constraint.a_col)) * (
            1.0 - b.null_fraction(constraint.b_col)
        )
    return factor


def _subset_size(
    subset: frozenset[int],
    inputs: Sequence[JoinInput],
    constraints: Sequence[JoinKeyConstraint],
) -> float:
    """Estimated result size of joining a subset (order-independent)."""
    size = 1.0
    for index in subset:
        size *= max(1.0, inputs[index].rows)
    for constraint in constraints:
        a, b = constraint.endpoints()
        if a in subset and b in subset:
            size *= _constraint_factor(inputs, constraint)
    return size


def _connected(
    index: int, subset: frozenset[int], constraints: Sequence[JoinKeyConstraint]
) -> bool:
    for constraint in constraints:
        a, b = constraint.endpoints()
        if (a == index and b in subset) or (b == index and a in subset):
            return True
    return False


def choose_join_order(
    inputs: Sequence[JoinInput],
    constraints: Sequence[JoinKeyConstraint],
    *,
    dp_limit: int = DP_INPUT_LIMIT,
) -> tuple[int, ...]:
    """The cheapest left-deep join order (``C_out``: sum of intermediate sizes).

    Exhaustive dynamic programming up to ``dp_limit`` inputs, greedy
    smallest-next-intermediate beyond.  Orders with fewer cross-product steps
    always win (classic Selinger pruning for connected graphs); among those,
    ``C_out`` decides -- so a disconnected constraint graph places its
    unavoidable cross products where they are cheapest.  Deterministic: ties
    break towards the original input order.
    """
    count = len(inputs)
    if count <= 1:
        return tuple(range(count))
    if count <= dp_limit:
        return _dp_order(inputs, constraints)
    return _greedy_order(inputs, constraints)


def _dp_order(
    inputs: Sequence[JoinInput], constraints: Sequence[JoinKeyConstraint]
) -> tuple[int, ...]:
    # Entries are (cross_steps, cost, order): orders with fewer cross-product
    # steps always win, cost breaks ties among them -- so a disconnected
    # constraint graph picks the *cheapest* placement for its unavoidable
    # cross products instead of merely a connected-last one.
    count = len(inputs)
    indices = range(count)
    best: dict[frozenset[int], tuple[int, float, tuple[int, ...]]] = {
        frozenset({i}): (0, 0.0, (i,)) for i in indices
    }
    for width in range(2, count + 1):
        for combo in itertools.combinations(indices, width):
            subset = frozenset(combo)
            size = _subset_size(subset, inputs, constraints)
            entries: list[tuple[int, float, tuple[int, ...]]] = []
            for last in sorted(subset):
                rest = subset - {last}
                crosses, cost, order = best[rest]
                if not _connected(last, rest, constraints):
                    crosses += 1
                entries.append((crosses, cost + size, order + (last,)))
            best[subset] = min(entries)
    return best[frozenset(indices)][2]


def _greedy_order(
    inputs: Sequence[JoinInput], constraints: Sequence[JoinKeyConstraint]
) -> tuple[int, ...]:
    count = len(inputs)
    pairs = []
    for a in range(count):
        for b in range(a + 1, count):
            subset = frozenset({a, b})
            connected = _connected(a, frozenset({b}), constraints)
            pairs.append(
                (not connected, _subset_size(subset, inputs, constraints), (a, b))
            )
    _, _, (first, second) = min(pairs)
    order = [first, second]
    joined = frozenset(order)
    while len(order) < count:
        candidates = []
        for index in range(count):
            if index in joined:
                continue
            extended = joined | {index}
            connected = _connected(index, joined, constraints)
            candidates.append(
                (not connected, _subset_size(extended, inputs, constraints), index)
            )
        _, _, chosen = min(candidates)
        order.append(chosen)
        joined = joined | {chosen}
    return tuple(order)

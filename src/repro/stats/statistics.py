"""ANALYZE: per-relation / per-column statistics for cost-based planning.

:func:`analyze_relation` scans a relation once and produces a
:class:`RelationStats`: the row count plus, per column, the non-null count,
distinct-value count, null fraction, min/max and a small equi-depth
:class:`Histogram`.  :func:`analyze_database` collects them into a
:class:`DatabaseStats`, which :meth:`Database.analyze` attaches to the
database so the planner's cost model (:mod:`repro.stats.cost`) can consume it.

Statistics are *advisory*: they steer join ordering, build-side and
nested-loop-vs-hash decisions, never results.  Planned execution stays
fingerprint-identical (rows, order, lineage) to the naive interpreter whether
or not a database has been analyzed -- the planner suite asserts it on every
catalog query and the stats fuzzer.

:class:`StatsCatalog` caches computed :class:`RelationStats` by relation
*content fingerprint*, so re-analyzing an unchanged relation (or the same
relation registered in many databases) is a dictionary hit; the service layer
wraps the same keying in its ``stats`` artifact cache.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.relational.relation import Relation

DEFAULT_BUCKETS = 8

#: Default size of the KMV distinct-count sketches carried by ColumnStats.
KMV_K = 64

#: Fraction of a relation's rows that may change through incremental merges
#: before the next delta forces a full rescan (histogram bounds and ndv
#: estimates degrade with drift; counts stay exact regardless).
DRIFT_THRESHOLD = 0.2


# ---------------------------------------------------------------------------
# KMV distinct-count sketches (mergeable ndv)
# ---------------------------------------------------------------------------

_KMV_SPACE = 2 ** 64


def _kmv_hash(value) -> int:
    """A stable 64-bit hash of one column value (None never reaches here)."""
    return int.from_bytes(
        hashlib.blake2b(repr(value).encode(), digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class KMVSketch:
    """A k-minimum-values distinct-count sketch: mergeable, never rescanning.

    Keeps the ``k`` smallest 64-bit hashes seen; with fewer than ``k``
    distinct hashes the estimate is exact, beyond that the classic KMV
    estimator ``(k - 1) / kth_minimum`` (scaled to the hash space) applies.
    Merging two sketches -- or folding a delta's inserted values into one --
    is a set union + truncation, which is what makes ANALYZE incremental.
    Deleted values cannot be unhashed, so after deletes the estimate is an
    upper bound (conservative for a cost model).
    """

    k: int = KMV_K
    values: tuple = ()  # sorted, distinct, at most k smallest hashes

    @classmethod
    def of(cls, column_values, k: int = KMV_K) -> "KMVSketch":
        hashes = sorted(
            {_kmv_hash(value) for value in column_values if value is not None}
        )
        return cls(k, tuple(hashes[:k]))

    def extend(self, column_values) -> "KMVSketch":
        """The sketch after observing more values (non-null only counted)."""
        fresh = {_kmv_hash(value) for value in column_values if value is not None}
        if not fresh:
            return self
        merged = sorted(set(self.values) | fresh)
        return KMVSketch(self.k, tuple(merged[: self.k]))

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        k = min(self.k, other.k)
        merged = sorted(set(self.values) | set(other.values))
        return KMVSketch(k, tuple(merged[:k]))

    def estimate(self) -> int:
        """Estimated distinct count (exact while under k values)."""
        if len(self.values) < self.k:
            return len(self.values)
        kth = self.values[-1]
        if kth <= 0:
            return len(self.values)
        return max(self.k, int(round((self.k - 1) * _KMV_SPACE / kth)))

    def to_dict(self) -> dict:
        return {"k": self.k, "size": len(self.values), "estimate": self.estimate()}


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Histogram:
    """A small equi-depth histogram over a column's non-null values.

    ``bounds`` holds ``buckets + 1`` sorted boundary values (quantiles of the
    observed data); each adjacent pair delimits an equal share of the rows.
    Columns with zero non-null values carry no histogram at all.
    """

    bounds: tuple

    @property
    def buckets(self) -> int:
        return max(1, len(self.bounds) - 1)

    def fraction_below(self, value, *, inclusive: bool) -> Optional[float]:
        """Estimated fraction of non-null values ``< value`` (``<=`` when
        ``inclusive``); ``None`` when the value is not comparable to the
        column's domain (the caller falls back to a default selectivity)."""
        if len(self.bounds) < 2:
            return None
        try:
            if inclusive:
                index = bisect.bisect_right(self.bounds, value)
            else:
                index = bisect.bisect_left(self.bounds, value)
        except TypeError:
            return None
        if index <= 0:
            return 0.0
        if index > self.buckets:
            return 1.0
        # ``index`` boundaries lie at or below the value; each boundary past
        # the first accounts for one bucket of mass (half a bucket for the
        # boundary the value falls on).
        return (index - 0.5) / self.buckets

    def to_dict(self) -> dict:
        return {"buckets": self.buckets, "bounds": list(self.bounds)}


def equi_depth_histogram(values: Sequence, buckets: int = DEFAULT_BUCKETS) -> Optional[Histogram]:
    """Build an equi-depth histogram from non-null values (None when empty).

    Mixed-orderability domains (which a typed schema should never produce)
    fail the sort and also yield ``None`` -- estimation then falls back to
    type-agnostic defaults instead of crashing ANALYZE.
    """
    cleaned = [value for value in values if value is not None]
    if not cleaned:
        return None
    try:
        cleaned.sort()
    except TypeError:
        return None
    count = len(cleaned)
    bounds = tuple(
        cleaned[min(count - 1, (index * (count - 1)) // buckets)]
        for index in range(buckets + 1)
    )
    return Histogram(bounds)


# ---------------------------------------------------------------------------
# Column / relation statistics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnStats:
    """ANALYZE output for one column."""

    name: str
    dtype: str
    row_count: int
    null_count: int
    distinct: int
    min_value: object = None
    max_value: object = None
    histogram: Optional[Histogram] = None
    #: Mergeable ndv sketch -- what makes incremental ANALYZE possible.
    sketch: Optional[KMVSketch] = None

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    def to_dict(self) -> dict:
        payload = {
            "dtype": self.dtype,
            "row_count": self.row_count,
            "null_count": self.null_count,
            "null_fraction": round(self.null_fraction, 4),
            "distinct": self.distinct,
            "min": self.min_value,
            "max": self.max_value,
        }
        if self.histogram is not None:
            payload["histogram"] = self.histogram.to_dict()
        if self.sketch is not None:
            payload["ndv_sketch"] = self.sketch.to_dict()
        return payload


@dataclass(frozen=True)
class RelationStats:
    """ANALYZE output for one relation, addressed by content fingerprint."""

    relation: str
    fingerprint: str
    row_count: int
    columns: tuple[ColumnStats, ...] = ()
    #: Fraction of rows changed by incremental merges since the last full
    #: scan; 0.0 for freshly scanned statistics.  Past ``DRIFT_THRESHOLD``
    #: the next delta triggers a rescan instead of another merge.
    drift: float = 0.0
    _by_name: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        self._by_name.update({column.name: column for column in self.columns})

    def column(self, name: str) -> Optional[ColumnStats]:
        return self._by_name.get(name)

    def with_name(self, relation: str) -> "RelationStats":
        """The same statistics reported under another relation name.

        Content-addressed caches key by fingerprint only, so a hit may carry
        the name the content was *first* analyzed under; this restores the
        requested one without re-analyzing.
        """
        if relation == self.relation:
            return self
        return RelationStats(
            relation=relation,
            fingerprint=self.fingerprint,
            row_count=self.row_count,
            columns=self.columns,
            drift=self.drift,
        )

    def to_dict(self) -> dict:
        return {
            "relation": self.relation,
            "fingerprint": self.fingerprint,
            "row_count": self.row_count,
            "drift": round(self.drift, 4),
            "columns": {column.name: column.to_dict() for column in self.columns},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RelationStats({self.relation}, {self.row_count} rows, "
            f"{len(self.columns)} columns)"
        )


def analyze_relation(
    relation: Relation,
    *,
    buckets: int = DEFAULT_BUCKETS,
    fingerprint: str | None = None,
) -> RelationStats:
    """One-pass ANALYZE of a relation: per-column counts, bounds, histograms."""
    row_count = len(relation)
    columns = []
    for position, attribute in enumerate(relation.schema):
        values = [row.values[position] for row in relation]
        non_null = [value for value in values if value is not None]
        try:
            distinct = len(set(non_null))
        except TypeError:  # unhashable values cannot be counted distinctly
            distinct = len(non_null)
        histogram = equi_depth_histogram(non_null, buckets) if non_null else None
        try:
            min_value = min(non_null) if non_null else None
            max_value = max(non_null) if non_null else None
        except TypeError:
            min_value = max_value = None
        columns.append(
            ColumnStats(
                name=attribute.name,
                dtype=attribute.dtype.value,
                row_count=row_count,
                null_count=row_count - len(non_null),
                distinct=distinct,
                min_value=min_value,
                max_value=max_value,
                histogram=histogram,
                sketch=KMVSketch.of(non_null),
            )
        )
    return RelationStats(
        relation=relation.name,
        fingerprint=fingerprint if fingerprint is not None else relation.fingerprint(),
        row_count=row_count,
        columns=tuple(columns),
    )


def merge_relation_stats(stats: RelationStats, delta, *, buckets: int = DEFAULT_BUCKETS) -> RelationStats:
    """Fold a row-level delta into existing statistics without rescanning.

    Counts (rows, nulls) advance exactly; distinct counts advance through the
    mergeable KMV sketch (exact for insert-only histories under ``k`` values,
    an upper bound after deletes); min/max widen on inserts and are retained
    on deletes; histogram bounds are retained as an approximation.  ``drift``
    accumulates the changed-row fraction -- past :data:`DRIFT_THRESHOLD` the
    catalog rescans instead of merging again.  The result is addressed by the
    delta's post-change fingerprint.
    """
    inserted = [change.after for change in delta.changes if change.after is not None]
    removed = [change.before for change in delta.changes if change.before is not None]
    counts = delta.counts()
    row_count = max(0, stats.row_count + counts["insert"] - counts["delete"])
    columns = []
    for position, column in enumerate(stats.columns):
        added = [values[position] for values in inserted]
        dropped = [values[position] for values in removed]
        added_non_null = [value for value in added if value is not None]
        null_count = max(
            0,
            column.null_count
            + (len(added) - len(added_non_null))
            - sum(1 for value in dropped if value is None),
        )
        sketch = (column.sketch or KMVSketch()).extend(added_non_null)
        distinct = min(sketch.estimate(), max(0, row_count - null_count))
        min_value, max_value = column.min_value, column.max_value
        if added_non_null:
            try:
                low, high = min(added_non_null), max(added_non_null)
                min_value = low if min_value is None else min(min_value, low)
                max_value = high if max_value is None else max(max_value, high)
            except TypeError:
                pass
        histogram = column.histogram
        if histogram is None and added_non_null:
            histogram = equi_depth_histogram(added_non_null, buckets)
        columns.append(
            ColumnStats(
                name=column.name,
                dtype=column.dtype,
                row_count=row_count,
                null_count=null_count,
                distinct=distinct,
                min_value=min_value,
                max_value=max_value,
                histogram=histogram,
                sketch=sketch,
            )
        )
    return RelationStats(
        relation=stats.relation,
        fingerprint=delta.new_fingerprint,
        row_count=row_count,
        columns=tuple(columns),
        drift=stats.drift + len(delta.changes) / max(1, stats.row_count),
    )


# ---------------------------------------------------------------------------
# Database-level statistics
# ---------------------------------------------------------------------------

class DatabaseStats:
    """Per-relation ANALYZE results of one database.

    Attached to :class:`~repro.relational.executor.Database` by
    :meth:`Database.analyze`; :meth:`invalidate` drops the entry of a
    re-registered (hence possibly changed) relation so the cost model falls
    back to heuristics for it instead of using stale numbers.
    """

    def __init__(self, relations: dict[str, RelationStats], *, buckets: int = DEFAULT_BUCKETS):
        self._relations = dict(relations)
        self.buckets = buckets

    def relation(self, name: str) -> Optional[RelationStats]:
        return self._relations.get(name)

    def relations(self) -> dict[str, RelationStats]:
        return dict(self._relations)

    def invalidate(self, name: str) -> None:
        self._relations.pop(name, None)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def fingerprint(self) -> str:
        """A stable content hash (participates in the service plan-cache key:
        analyzing a database must re-key its cached plans)."""
        import hashlib

        digest = hashlib.sha256()
        for name in sorted(self._relations):
            digest.update(name.encode())
            digest.update(self._relations[name].fingerprint.encode())
            digest.update(str(self.buckets).encode())
        return digest.hexdigest()

    def to_dict(self) -> dict:
        return {
            "buckets": self.buckets,
            "relations": {
                name: stats.to_dict() for name, stats in sorted(self._relations.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {name: stats.row_count for name, stats in self._relations.items()}
        return f"DatabaseStats({sizes})"


class StatsCatalog:
    """A thread-safe cache of :class:`RelationStats` keyed by content fingerprint.

    Identical relation content (no matter which database or name it lives
    under) is analyzed once per (fingerprint, buckets) pair.
    """

    def __init__(self, *, buckets: int = DEFAULT_BUCKETS):
        self.buckets = buckets
        self._entries: dict[str, RelationStats] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def relation_stats(self, relation: Relation) -> RelationStats:
        fingerprint = relation.fingerprint()
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        stats = analyze_relation(
            relation, buckets=self.buckets, fingerprint=fingerprint
        )
        with self._lock:
            self._entries[fingerprint] = stats
        return stats

    def apply_delta(
        self,
        delta,
        relation_after: Relation,
        *,
        drift_threshold: float = DRIFT_THRESHOLD,
    ) -> tuple[RelationStats, str]:
        """Advance cached statistics across a delta; returns ``(stats, mode)``.

        Merges the delta into the entry cached at the delta's base fingerprint
        (``mode == "incremental"``); falls back to a full rescan of
        ``relation_after`` when no mergeable base exists or accumulated drift
        would exceed ``drift_threshold`` (``mode == "rescan"``).  Either way
        the result lands in the catalog under the post-change fingerprint, so
        subsequent ANALYZE calls over the new content are dictionary hits.
        """
        with self._lock:
            base = self._entries.get(delta.base_fingerprint)
        if base is not None and all(
            column.sketch is not None for column in base.columns
        ):
            merged = merge_relation_stats(base, delta, buckets=self.buckets)
            if merged.drift <= drift_threshold:
                with self._lock:
                    self._entries[delta.new_fingerprint] = merged
                    self.hits += 1
                return merged, "incremental"
        stats = analyze_relation(
            relation_after, buckets=self.buckets, fingerprint=delta.new_fingerprint
        )
        with self._lock:
            self._entries[delta.new_fingerprint] = stats
            self.misses += 1
        return stats, "rescan"


def analyze_database(
    db,
    *,
    buckets: int = DEFAULT_BUCKETS,
    catalog: StatsCatalog | None = None,
) -> DatabaseStats:
    """ANALYZE every base relation of a database (optionally via a catalog)."""
    if catalog is not None:
        buckets = catalog.buckets
    relations = {}
    for name, relation in db.relations().items():
        if catalog is not None:
            relations[name] = catalog.relation_stats(relation)
        else:
            relations[name] = analyze_relation(relation, buckets=buckets)
    return DatabaseStats(relations, buckets=buckets)

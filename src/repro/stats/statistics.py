"""ANALYZE: per-relation / per-column statistics for cost-based planning.

:func:`analyze_relation` scans a relation once and produces a
:class:`RelationStats`: the row count plus, per column, the non-null count,
distinct-value count, null fraction, min/max and a small equi-depth
:class:`Histogram`.  :func:`analyze_database` collects them into a
:class:`DatabaseStats`, which :meth:`Database.analyze` attaches to the
database so the planner's cost model (:mod:`repro.stats.cost`) can consume it.

Statistics are *advisory*: they steer join ordering, build-side and
nested-loop-vs-hash decisions, never results.  Planned execution stays
fingerprint-identical (rows, order, lineage) to the naive interpreter whether
or not a database has been analyzed -- the planner suite asserts it on every
catalog query and the stats fuzzer.

:class:`StatsCatalog` caches computed :class:`RelationStats` by relation
*content fingerprint*, so re-analyzing an unchanged relation (or the same
relation registered in many databases) is a dictionary hit; the service layer
wraps the same keying in its ``stats`` artifact cache.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.relational.relation import Relation

DEFAULT_BUCKETS = 8


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Histogram:
    """A small equi-depth histogram over a column's non-null values.

    ``bounds`` holds ``buckets + 1`` sorted boundary values (quantiles of the
    observed data); each adjacent pair delimits an equal share of the rows.
    Columns with zero non-null values carry no histogram at all.
    """

    bounds: tuple

    @property
    def buckets(self) -> int:
        return max(1, len(self.bounds) - 1)

    def fraction_below(self, value, *, inclusive: bool) -> Optional[float]:
        """Estimated fraction of non-null values ``< value`` (``<=`` when
        ``inclusive``); ``None`` when the value is not comparable to the
        column's domain (the caller falls back to a default selectivity)."""
        if len(self.bounds) < 2:
            return None
        try:
            if inclusive:
                index = bisect.bisect_right(self.bounds, value)
            else:
                index = bisect.bisect_left(self.bounds, value)
        except TypeError:
            return None
        if index <= 0:
            return 0.0
        if index > self.buckets:
            return 1.0
        # ``index`` boundaries lie at or below the value; each boundary past
        # the first accounts for one bucket of mass (half a bucket for the
        # boundary the value falls on).
        return (index - 0.5) / self.buckets

    def to_dict(self) -> dict:
        return {"buckets": self.buckets, "bounds": list(self.bounds)}


def equi_depth_histogram(values: Sequence, buckets: int = DEFAULT_BUCKETS) -> Optional[Histogram]:
    """Build an equi-depth histogram from non-null values (None when empty).

    Mixed-orderability domains (which a typed schema should never produce)
    fail the sort and also yield ``None`` -- estimation then falls back to
    type-agnostic defaults instead of crashing ANALYZE.
    """
    cleaned = [value for value in values if value is not None]
    if not cleaned:
        return None
    try:
        cleaned.sort()
    except TypeError:
        return None
    count = len(cleaned)
    bounds = tuple(
        cleaned[min(count - 1, (index * (count - 1)) // buckets)]
        for index in range(buckets + 1)
    )
    return Histogram(bounds)


# ---------------------------------------------------------------------------
# Column / relation statistics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnStats:
    """ANALYZE output for one column."""

    name: str
    dtype: str
    row_count: int
    null_count: int
    distinct: int
    min_value: object = None
    max_value: object = None
    histogram: Optional[Histogram] = None

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    def to_dict(self) -> dict:
        payload = {
            "dtype": self.dtype,
            "row_count": self.row_count,
            "null_count": self.null_count,
            "null_fraction": round(self.null_fraction, 4),
            "distinct": self.distinct,
            "min": self.min_value,
            "max": self.max_value,
        }
        if self.histogram is not None:
            payload["histogram"] = self.histogram.to_dict()
        return payload


@dataclass(frozen=True)
class RelationStats:
    """ANALYZE output for one relation, addressed by content fingerprint."""

    relation: str
    fingerprint: str
    row_count: int
    columns: tuple[ColumnStats, ...] = ()
    _by_name: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        self._by_name.update({column.name: column for column in self.columns})

    def column(self, name: str) -> Optional[ColumnStats]:
        return self._by_name.get(name)

    def with_name(self, relation: str) -> "RelationStats":
        """The same statistics reported under another relation name.

        Content-addressed caches key by fingerprint only, so a hit may carry
        the name the content was *first* analyzed under; this restores the
        requested one without re-analyzing.
        """
        if relation == self.relation:
            return self
        return RelationStats(
            relation=relation,
            fingerprint=self.fingerprint,
            row_count=self.row_count,
            columns=self.columns,
        )

    def to_dict(self) -> dict:
        return {
            "relation": self.relation,
            "fingerprint": self.fingerprint,
            "row_count": self.row_count,
            "columns": {column.name: column.to_dict() for column in self.columns},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RelationStats({self.relation}, {self.row_count} rows, "
            f"{len(self.columns)} columns)"
        )


def analyze_relation(
    relation: Relation,
    *,
    buckets: int = DEFAULT_BUCKETS,
    fingerprint: str | None = None,
) -> RelationStats:
    """One-pass ANALYZE of a relation: per-column counts, bounds, histograms."""
    row_count = len(relation)
    columns = []
    for position, attribute in enumerate(relation.schema):
        values = [row.values[position] for row in relation]
        non_null = [value for value in values if value is not None]
        try:
            distinct = len(set(non_null))
        except TypeError:  # unhashable values cannot be counted distinctly
            distinct = len(non_null)
        histogram = equi_depth_histogram(non_null, buckets) if non_null else None
        try:
            min_value = min(non_null) if non_null else None
            max_value = max(non_null) if non_null else None
        except TypeError:
            min_value = max_value = None
        columns.append(
            ColumnStats(
                name=attribute.name,
                dtype=attribute.dtype.value,
                row_count=row_count,
                null_count=row_count - len(non_null),
                distinct=distinct,
                min_value=min_value,
                max_value=max_value,
                histogram=histogram,
            )
        )
    return RelationStats(
        relation=relation.name,
        fingerprint=fingerprint if fingerprint is not None else relation.fingerprint(),
        row_count=row_count,
        columns=tuple(columns),
    )


# ---------------------------------------------------------------------------
# Database-level statistics
# ---------------------------------------------------------------------------

class DatabaseStats:
    """Per-relation ANALYZE results of one database.

    Attached to :class:`~repro.relational.executor.Database` by
    :meth:`Database.analyze`; :meth:`invalidate` drops the entry of a
    re-registered (hence possibly changed) relation so the cost model falls
    back to heuristics for it instead of using stale numbers.
    """

    def __init__(self, relations: dict[str, RelationStats], *, buckets: int = DEFAULT_BUCKETS):
        self._relations = dict(relations)
        self.buckets = buckets

    def relation(self, name: str) -> Optional[RelationStats]:
        return self._relations.get(name)

    def relations(self) -> dict[str, RelationStats]:
        return dict(self._relations)

    def invalidate(self, name: str) -> None:
        self._relations.pop(name, None)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def fingerprint(self) -> str:
        """A stable content hash (participates in the service plan-cache key:
        analyzing a database must re-key its cached plans)."""
        import hashlib

        digest = hashlib.sha256()
        for name in sorted(self._relations):
            digest.update(name.encode())
            digest.update(self._relations[name].fingerprint.encode())
            digest.update(str(self.buckets).encode())
        return digest.hexdigest()

    def to_dict(self) -> dict:
        return {
            "buckets": self.buckets,
            "relations": {
                name: stats.to_dict() for name, stats in sorted(self._relations.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {name: stats.row_count for name, stats in self._relations.items()}
        return f"DatabaseStats({sizes})"


class StatsCatalog:
    """A thread-safe cache of :class:`RelationStats` keyed by content fingerprint.

    Identical relation content (no matter which database or name it lives
    under) is analyzed once per (fingerprint, buckets) pair.
    """

    def __init__(self, *, buckets: int = DEFAULT_BUCKETS):
        self.buckets = buckets
        self._entries: dict[str, RelationStats] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def relation_stats(self, relation: Relation) -> RelationStats:
        fingerprint = relation.fingerprint()
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
        stats = analyze_relation(
            relation, buckets=self.buckets, fingerprint=fingerprint
        )
        with self._lock:
            self._entries[fingerprint] = stats
        return stats


def analyze_database(
    db,
    *,
    buckets: int = DEFAULT_BUCKETS,
    catalog: StatsCatalog | None = None,
) -> DatabaseStats:
    """ANALYZE every base relation of a database (optionally via a catalog)."""
    if catalog is not None:
        buckets = catalog.buckets
    relations = {}
    for name, relation in db.relations().items():
        if catalog is not None:
            relations[name] = catalog.relation_stats(relation)
        else:
            relations[name] = analyze_relation(relation, buckets=buckets)
    return DatabaseStats(relations, buckets=buckets)

"""Statistics-driven cost-based planning: ANALYZE, cost model, join ordering.

* :mod:`repro.stats.statistics` -- ANALYZE: per-relation/per-column row
  counts, distinct counts, null fractions, min/max and equi-depth histograms,
  cached by relation content fingerprint (:class:`StatsCatalog`);
* :mod:`repro.stats.cost` -- the :class:`CostModel` consumed by the planner
  (selectivity estimation, equi-join factors) and :func:`choose_join_order`
  (Selinger-style DP / greedy join-order search).

``db.analyze()`` attaches a :class:`DatabaseStats` to a database; the planner
picks it up automatically and starts reordering multi-joins and making
statistics-backed build-side / nested-loop-vs-hash decisions.  Statistics
never change results -- only plans.
"""

from repro.stats.cost import (
    ColumnProfile,
    CostModel,
    JoinInput,
    JoinKeyConstraint,
    choose_join_order,
    equi_join_factor,
)
from repro.stats.statistics import (
    DEFAULT_BUCKETS,
    DRIFT_THRESHOLD,
    KMV_K,
    ColumnStats,
    DatabaseStats,
    Histogram,
    KMVSketch,
    RelationStats,
    StatsCatalog,
    analyze_database,
    analyze_relation,
    equi_depth_histogram,
    merge_relation_stats,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DRIFT_THRESHOLD",
    "KMV_K",
    "ColumnStats",
    "RelationStats",
    "DatabaseStats",
    "Histogram",
    "KMVSketch",
    "StatsCatalog",
    "analyze_relation",
    "analyze_database",
    "equi_depth_histogram",
    "merge_relation_stats",
    "ColumnProfile",
    "CostModel",
    "JoinInput",
    "JoinKeyConstraint",
    "choose_join_order",
    "equi_join_factor",
]

"""Baseline and competitor methods used in the paper's evaluation (Section 5.1.3).

All baselines implement the :class:`~repro.baselines.base.DisagreementExplainer`
interface: given an :class:`~repro.core.problem.ExplainProblem` they produce an
:class:`~repro.core.explanations.ExplanationSet`, which the evaluation harness
scores against the gold standard exactly like Explain3D's output.

* :class:`FormalExpBaseline` -- single-dataset intervention-based predicate
  explanations (Roy & Suciu style), adapted to the two-dataset setting by
  asking why each query's result is high/low.
* :class:`RSwooshBaseline` -- the R-Swoosh generic entity-resolution algorithm
  with a Jaccard match threshold; its deterministic matches are used as the
  evidence mapping.
* :class:`ThresholdBaseline` -- keep initial matches with probability above a
  fixed threshold.
* :class:`GreedyBaseline` -- Explain3D's objective, maximized greedily instead
  of by constrained optimization.
* :class:`ExactCoverBaseline` -- an integer-programming adaptation of the
  Exact Cover problem (the source of the NP-completeness reduction).
* :class:`Explain3DMethod` -- Explain3D itself wrapped in the same interface,
  so the benchmark harness can run every method uniformly.
"""

from repro.baselines.base import DisagreementExplainer, Explain3DMethod
from repro.baselines.formalexp import FormalExpBaseline, PredicateExplanation
from repro.baselines.rswoosh import RSwooshBaseline
from repro.baselines.threshold import ThresholdBaseline
from repro.baselines.greedy import GreedyBaseline
from repro.baselines.exactcover import ExactCoverBaseline

__all__ = [
    "DisagreementExplainer",
    "Explain3DMethod",
    "FormalExpBaseline",
    "PredicateExplanation",
    "RSwooshBaseline",
    "ThresholdBaseline",
    "GreedyBaseline",
    "ExactCoverBaseline",
    "all_methods",
]


def all_methods(*, include_unoptimized: bool = False, batch_size: int = 1000):
    """The method line-up of Figures 6 and 7, in the paper's order."""
    methods = [
        Explain3DMethod(batch_size=batch_size),
        GreedyBaseline(),
        ThresholdBaseline(0.9),
        RSwooshBaseline(),
        ExactCoverBaseline(),
        FormalExpBaseline(top_k=15),
    ]
    if include_unoptimized:
        methods.insert(1, Explain3DMethod(partitioning="none", name="Exp3D-NoOpt"))
    return methods

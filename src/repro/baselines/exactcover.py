"""EXACTCOVER: an integer-programming adaptation of the Exact Cover problem.

The NP-completeness proof of Theorem 3.5 reduces Exact Cover to EXP-3D:
elements are tuples of one canonical relation, sets are tuples of the other,
and an element belongs to a set when the initial mapping contains the
corresponding match.  The baseline turns that decision problem into an
optimization: choose sets and an assignment of elements to chosen sets such
that every element is covered at most once and the number of covered sets plus
covered elements is maximized.  The selected (element, set) assignments form
the evidence mapping; explanations are derived from it like for the other
mapping-based baselines.

As the paper observes, this adaptation ignores tuple impacts and match
probabilities, which is exactly why it performs poorly.
"""

from __future__ import annotations

from repro.baselines.base import DisagreementExplainer
from repro.core.explanations import ExplanationSet
from repro.core.problem import ExplainProblem
from repro.core.scoring import derive_explanations_from_mapping
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.solver.backends import MILPSolver, default_solver
from repro.solver.model import ConstraintSense, LinearExpression, MILPModel, ObjectiveSense


class ExactCoverBaseline(DisagreementExplainer):
    """Exact-Cover-style ILP over the initial tuple mapping."""

    name = "ExactCover"

    def __init__(self, *, solver: MILPSolver | None = None):
        self.solver = solver or default_solver()

    def explain(self, problem: ExplainProblem) -> ExplanationSet:
        if not len(problem.mapping):
            return derive_explanations_from_mapping(
                problem.canonical_left,
                problem.canonical_right,
                TupleMapping(),
                problem.relation,
            )

        model = MILPModel("exact_cover")

        # Sets: tuples of the right canonical relation that appear in any match.
        set_vars: dict[str, object] = {}
        assign_vars: dict[tuple[str, str], object] = {}
        matches_by_left: dict[str, list] = {}
        for match in problem.mapping:
            matches_by_left.setdefault(match.left_key, []).append(match)
            if match.right_key not in set_vars:
                set_vars[match.right_key] = model.add_binary(f"s_{match.right_key}")
            assign_vars[match.pair] = model.add_binary(f"z_{match.left_key}|{match.right_key}")
            # An element may only be assigned to a chosen set.
            model.add_constraint(
                assign_vars[match.pair] - set_vars[match.right_key],
                ConstraintSense.LESS_EQUAL,
                0.0,
                f"choose_{match.left_key}|{match.right_key}",
            )

        # Each element is covered at most once (the "exact" cover restriction).
        for left_key, matches in matches_by_left.items():
            expr = LinearExpression()
            for match in matches:
                expr = expr + assign_vars[match.pair]
            model.add_constraint(expr, ConstraintSense.LESS_EQUAL, 1.0, f"cover_{left_key}")

        # Maximize covered sets + covered elements.
        objective = LinearExpression()
        for variable in set_vars.values():
            objective = objective + variable
        for variable in assign_vars.values():
            objective = objective + variable
        model.set_objective(objective, ObjectiveSense.MAXIMIZE)

        solution = self.solver.solve(model)

        evidence = TupleMapping()
        for match in problem.mapping:
            if solution.binary(assign_vars[match.pair].name):
                evidence.add(
                    TupleMatch(match.left_key, match.right_key, match.probability, match.similarity)
                )
        return derive_explanations_from_mapping(
            problem.canonical_left, problem.canonical_right, evidence, problem.relation
        )

"""Common interface for all disagreement-explanation methods."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.explanations import ExplanationSet
from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.core.problem import ExplainProblem


@dataclass
class TimedResult:
    """An explanation set together with the time it took to produce it."""

    explanations: ExplanationSet
    seconds: float


class DisagreementExplainer:
    """Base class: a method that explains the disagreement of an ExplainProblem."""

    name: str = "method"

    def explain(self, problem: ExplainProblem) -> ExplanationSet:
        raise NotImplementedError

    def explain_timed(self, problem: ExplainProblem) -> TimedResult:
        start = time.perf_counter()
        explanations = self.explain(problem)
        return TimedResult(explanations, time.perf_counter() - start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


class Explain3DMethod(DisagreementExplainer):
    """Explain3D (Stage 2 only) exposed through the common baseline interface.

    Stage 1 is shared across all methods (they all consume the same
    :class:`ExplainProblem`), so wrapping only the solving stage keeps the
    runtime comparison of Figures 6c/6f/7c faithful: the paper notes that
    initial-match generation dominates and is shared by all methods.
    """

    def __init__(
        self,
        *,
        partitioning: str = "smart",
        batch_size: int = 1000,
        name: str | None = None,
        solver=None,
    ):
        self.config = SolveConfig(
            partitioning=partitioning,  # type: ignore[arg-type]
            batch_size=batch_size,
            solver=solver,
        )
        self.name = name or ("Exp3D" if partitioning != "none" else "Exp3D-NoOpt")

    def explain(self, problem: ExplainProblem) -> ExplanationSet:
        solver = PartitionedSolver(problem, self.config)
        return solver.solve()

"""FORMALEXP: single-dataset, intervention-based predicate explanations.

Roy & Suciu's formal explanation framework (SIGMOD 2014) explains a surprising
aggregate by finding predicates whose *intervention* (removing the tuples they
cover) moves the aggregate the most.  It operates on one dataset at a time and
knows nothing about the other query; the paper adapts it to the two-dataset
setting by asking "why is Q1's result high?" / "why is Q2's result low?" and
treating tuples covered by the top-k predicates as provenance-based
explanations.  No evidence mapping is produced.

This implementation enumerates conjunctive predicates of up to two
attribute-value conditions over each query's provenance relation, scores each
predicate by how much removing its tuples shrinks the *absolute disagreement*
between the two query results, and reports the tuples covered by the top-k
predicates (across both sides) as explanations.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.baselines.base import DisagreementExplainer
from repro.core.explanations import ExplanationSet, ProvenanceExplanation
from repro.core.problem import ExplainProblem
from repro.graphs.bipartite import Side
from repro.matching.tuple_matching import TupleMapping


@dataclass(frozen=True)
class PredicateExplanation:
    """A ranked predicate explanation on one side."""

    side: Side
    conditions: tuple[tuple[str, object], ...]
    covered_keys: tuple[str, ...]
    score: float

    def describe(self) -> str:
        clauses = " AND ".join(f"{attribute} = {value!r}" for attribute, value in self.conditions)
        return f"[{self.side.value}] {clauses} (score {self.score:g}, covers {len(self.covered_keys)})"


class FormalExpBaseline(DisagreementExplainer):
    """Top-k intervention-based predicate explanations per dataset."""

    def __init__(self, top_k: int = 15, *, max_conditions: int = 2, max_candidates: int = 5000):
        self.top_k = top_k
        self.max_conditions = max_conditions
        self.max_candidates = max_candidates
        self.name = f"FormalExp-Top{top_k}"

    # -- candidate predicates ---------------------------------------------------------
    def _candidates(self, records: list[dict]) -> list[tuple[tuple[str, object], ...]]:
        singles: set[tuple[str, object]] = set()
        for record in records:
            for attribute, value in record.items():
                if value is None:
                    continue
                try:
                    hash(value)
                except TypeError:
                    continue
                singles.add((attribute, value))
        candidates = [(single,) for single in singles]
        if self.max_conditions >= 2 and len(singles) <= 200:
            for first, second in combinations(sorted(singles, key=repr), 2):
                if first[0] != second[0]:
                    candidates.append((first, second))
        return candidates[: self.max_candidates]

    @staticmethod
    def _covered(records: list[tuple[str, dict, float]], conditions) -> list[tuple[str, float]]:
        covered = []
        for key, record, impact in records:
            if all(record.get(attribute) == value for attribute, value in conditions):
                covered.append((key, impact))
        return covered

    # -- the explainer interface ----------------------------------------------------------
    def explain(self, problem: ExplainProblem) -> ExplanationSet:
        result_left = problem.result_left
        result_right = problem.result_right
        if result_left is None or result_right is None:
            # Non-aggregate disagreement: fall back to the total canonical impact.
            result_left = problem.canonical_left.total_impact()
            result_right = problem.canonical_right.total_impact()
        baseline_gap = abs(result_left - result_right)

        ranked: list[PredicateExplanation] = []
        for side, canonical, own_result, other_result in (
            (Side.LEFT, problem.canonical_left, result_left, result_right),
            (Side.RIGHT, problem.canonical_right, result_right, result_left),
        ):
            records = []
            for canonical_tuple in canonical:
                members = canonical.provenance_members(canonical_tuple.key)
                if members:
                    for member in members:
                        records.append((canonical_tuple.key, dict(member.values), member.impact))
                else:
                    records.append(
                        (canonical_tuple.key, dict(canonical_tuple.values), canonical_tuple.impact)
                    )
            candidates = self._candidates([record for _, record, _ in records])
            for conditions in candidates:
                covered = self._covered(records, conditions)
                if not covered:
                    continue
                removed_impact = sum(impact for _, impact in covered)
                new_gap = abs((own_result - removed_impact) - other_result)
                score = baseline_gap - new_gap
                if score <= 0:
                    continue
                ranked.append(
                    PredicateExplanation(
                        side,
                        conditions,
                        tuple(sorted({key for key, _ in covered})),
                        score,
                    )
                )

        ranked.sort(key=lambda explanation: (-explanation.score, len(explanation.covered_keys)))
        top = ranked[: self.top_k]

        provenance: list[ProvenanceExplanation] = []
        seen: set[tuple[str, str]] = set()
        for explanation in top:
            for key in explanation.covered_keys:
                identity = (explanation.side.value, key)
                if identity not in seen:
                    seen.add(identity)
                    provenance.append(ProvenanceExplanation(explanation.side, key))

        return ExplanationSet(provenance=provenance, value=[], evidence=TupleMapping())

"""RSWOOSH: generic entity resolution (Benjelloun et al., VLDB Journal 2009).

R-Swoosh maintains a set of resolved records ``I'``; each incoming record is
compared against the resolved set, and on a match the two records are merged
(their attribute token sets are unioned) and re-inserted, so merges can
cascade.  The pairwise match function is Jaccard similarity over the matching
attributes with a fixed threshold (the paper uses 0.75 and notes Jaro performs
strictly worse).

The resulting clusters provide deterministic tuple matches (probability 1.0):
every left/right pair co-resident in a cluster joins the evidence mapping.
Explanations are then derived exactly like for THRESHOLD/GREEDY.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import DisagreementExplainer
from repro.core.explanations import ExplanationSet
from repro.core.problem import ExplainProblem
from repro.core.scoring import derive_explanations_from_mapping
from repro.matching.similarity import jaro_similarity, tokenize
from repro.matching.tuple_matching import TupleMapping, TupleMatch


@dataclass
class _ERRecord:
    """A (possibly merged) record during entity resolution."""

    tokens: frozenset[str]
    numeric_values: tuple[float, ...]
    left_keys: set[str] = field(default_factory=set)
    right_keys: set[str] = field(default_factory=set)

    def merge(self, other: "_ERRecord") -> "_ERRecord":
        return _ERRecord(
            tokens=self.tokens | other.tokens,
            numeric_values=self.numeric_values + other.numeric_values,
            left_keys=self.left_keys | other.left_keys,
            right_keys=self.right_keys | other.right_keys,
        )


class RSwooshBaseline(DisagreementExplainer):
    """R-Swoosh entity resolution used as a disagreement explainer."""

    def __init__(self, threshold: float = 0.75, *, similarity: str = "jaccard"):
        if similarity not in ("jaccard", "jaro"):
            raise ValueError("similarity must be 'jaccard' or 'jaro'")
        self.threshold = threshold
        self.similarity = similarity
        self.name = f"Rswoosh({similarity}>={threshold:g})"

    # -- record construction and matching ------------------------------------------------
    def _record_for(self, canonical_tuple, attributes, *, left: bool) -> _ERRecord:
        tokens: set[str] = set()
        numerics: list[float] = []
        for attribute in attributes:
            value = canonical_tuple.value(attribute)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                numerics.append(float(value))
            else:
                tokens |= tokenize(value)
        keys = {canonical_tuple.key}
        return _ERRecord(
            tokens=frozenset(tokens),
            numeric_values=tuple(numerics),
            left_keys=keys if left else set(),
            right_keys=set() if left else keys,
        )

    def _matches(self, first: _ERRecord, second: _ERRecord) -> bool:
        if self.similarity == "jaro":
            score = jaro_similarity(" ".join(sorted(first.tokens)), " ".join(sorted(second.tokens)))
            return score >= self.threshold
        union = first.tokens | second.tokens
        if not union:
            return False
        score = len(first.tokens & second.tokens) / len(union)
        return score >= self.threshold

    # -- the R-Swoosh loop -----------------------------------------------------------------
    def _resolve(self, records: list[_ERRecord]) -> list[_ERRecord]:
        pending = list(records)
        resolved: list[_ERRecord] = []
        while pending:
            record = pending.pop()
            merged_with = None
            for index, candidate in enumerate(resolved):
                if self._matches(record, candidate):
                    merged_with = index
                    break
            if merged_with is None:
                resolved.append(record)
            else:
                candidate = resolved.pop(merged_with)
                pending.append(candidate.merge(record))
        return resolved

    # -- the explainer interface --------------------------------------------------------------
    def explain(self, problem: ExplainProblem) -> ExplanationSet:
        pairs = problem.attribute_matches.attribute_pairs()
        left_attrs = [pair[0] for pair in pairs]
        right_attrs = [pair[1] for pair in pairs]

        records = [
            self._record_for(t, left_attrs, left=True) for t in problem.canonical_left
        ] + [
            self._record_for(t, right_attrs, left=False) for t in problem.canonical_right
        ]
        clusters = self._resolve(records)

        evidence = TupleMapping()
        for cluster in clusters:
            for left_key in sorted(cluster.left_keys):
                for right_key in sorted(cluster.right_keys):
                    evidence.add(TupleMatch(left_key, right_key, 1.0))

        return derive_explanations_from_mapping(
            problem.canonical_left, problem.canonical_right, evidence, problem.relation
        )

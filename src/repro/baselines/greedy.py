"""GREEDY: Explain3D's objective, maximized greedily (Section 5.1.3).

Starting from an empty evidence mapping, the baseline scans the initial tuple
matches in descending probability order and adds a match when (a) it does not
violate the valid-mapping cardinality and (b) it improves the objective value
of the explanation set implied by the evidence built so far.

The objective delta of adding one match is computed incrementally from the
scoring model of Section 3.1:

* the match's own term flips from ``log(1 - p)`` to ``log p``;
* a previously unmatched endpoint flips from "provenance explanation"
  (``log(1 - alpha)``) to "kept";
* the anchor tuple of the affected component may flip between "impact
  unchanged" and "impact corrected" as the component's impact balance changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.baselines.base import DisagreementExplainer
from repro.core.explanations import ExplanationSet
from repro.core.problem import ExplainProblem
from repro.core.scoring import MatchLogProbability, Priors, derive_explanations_from_mapping
from repro.graphs.bipartite import Side
from repro.matching.tuple_matching import TupleMapping, TupleMatch


@dataclass
class _GreedyState:
    """Incremental bookkeeping of the evidence built so far."""

    priors: Priors
    anchor_impacts: dict[str, float]
    other_impacts: dict[str, float]
    anchor_matched_sum: dict[str, float] = field(default_factory=dict)
    anchor_degree: dict[str, int] = field(default_factory=dict)
    other_degree: dict[str, int] = field(default_factory=dict)

    # -- per-tuple objective terms ---------------------------------------------------
    def anchor_term(self, key: str, *, extra_sum: float = 0.0, extra_degree: int = 0) -> float:
        degree = self.anchor_degree.get(key, 0) + extra_degree
        if degree == 0:
            return self.priors.removed
        total = self.anchor_matched_sum.get(key, 0.0) + extra_sum
        if math.isclose(total, self.anchor_impacts[key], abs_tol=1e-9):
            return self.priors.kept_unchanged
        return self.priors.kept_changed

    def other_term(self, key: str, *, extra_degree: int = 0) -> float:
        degree = self.other_degree.get(key, 0) + extra_degree
        if degree == 0:
            return self.priors.removed
        return self.priors.kept_unchanged

    # -- the delta of adding one match -------------------------------------------------
    def gain(self, anchor_key: str, other_key: str, probability: float) -> float:
        terms = MatchLogProbability.of(probability)
        match_delta = terms.selected - terms.rejected
        other_impact = self.other_impacts[other_key]
        anchor_delta = self.anchor_term(
            anchor_key, extra_sum=other_impact, extra_degree=1
        ) - self.anchor_term(anchor_key)
        other_delta = self.other_term(other_key, extra_degree=1) - self.other_term(other_key)
        return match_delta + anchor_delta + other_delta

    def commit(self, anchor_key: str, other_key: str) -> None:
        self.anchor_degree[anchor_key] = self.anchor_degree.get(anchor_key, 0) + 1
        self.other_degree[other_key] = self.other_degree.get(other_key, 0) + 1
        self.anchor_matched_sum[anchor_key] = (
            self.anchor_matched_sum.get(anchor_key, 0.0) + self.other_impacts[other_key]
        )


class GreedyBaseline(DisagreementExplainer):
    """Greedy evidence construction under Explain3D's objective."""

    name = "Greedy"

    def explain(self, problem: ExplainProblem) -> ExplanationSet:
        relation = problem.relation
        priors = problem.priors

        # Orient the component anchors exactly as the MILP does.
        if relation.right_degree_limited and not relation.left_degree_limited:
            anchor_side = Side.LEFT
            anchor_relation, other_relation = problem.canonical_left, problem.canonical_right
        else:
            anchor_side = Side.RIGHT
            anchor_relation, other_relation = problem.canonical_right, problem.canonical_left

        state = _GreedyState(
            priors=priors,
            anchor_impacts=anchor_relation.impacts(),
            other_impacts=other_relation.impacts(),
        )
        anchor_limited = (
            relation.left_degree_limited if anchor_side is Side.LEFT else relation.right_degree_limited
        )
        other_limited = (
            relation.right_degree_limited if anchor_side is Side.LEFT else relation.left_degree_limited
        )

        evidence = TupleMapping()
        for match in problem.mapping.sorted_by_probability():
            anchor_key = match.right_key if anchor_side is Side.RIGHT else match.left_key
            other_key = match.left_key if anchor_side is Side.RIGHT else match.right_key
            if anchor_key not in state.anchor_impacts or other_key not in state.other_impacts:
                continue
            if anchor_limited and state.anchor_degree.get(anchor_key, 0) >= 1:
                continue
            if other_limited and state.other_degree.get(other_key, 0) >= 1:
                continue
            if state.gain(anchor_key, other_key, match.probability) <= 0.0:
                continue
            state.commit(anchor_key, other_key)
            evidence.add(
                TupleMatch(match.left_key, match.right_key, match.probability, match.similarity)
            )

        return derive_explanations_from_mapping(
            problem.canonical_left, problem.canonical_right, evidence, relation
        )

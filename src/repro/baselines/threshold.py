"""THRESHOLD: refine the initial tuple mapping with a fixed probability cutoff."""

from __future__ import annotations

from repro.core.explanations import ExplanationSet
from repro.core.problem import ExplainProblem
from repro.core.scoring import derive_explanations_from_mapping
from repro.baselines.base import DisagreementExplainer


class ThresholdBaseline(DisagreementExplainer):
    """Keep initial matches with ``probability >= threshold`` as the evidence.

    Explanations are then derived exactly like for the other record-linkage
    methods: unmatched tuples become provenance-based explanations, matched
    components with unequal impacts yield value-based explanations.
    """

    def __init__(self, threshold: float = 0.9, *, enforce_validity: bool = True):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.enforce_validity = enforce_validity
        self.name = f"Threshold-{threshold:g}"

    def explain(self, problem: ExplainProblem) -> ExplanationSet:
        evidence = problem.mapping.above(self.threshold)
        if self.enforce_validity:
            evidence = _enforce_cardinality(evidence, problem)
        return derive_explanations_from_mapping(
            problem.canonical_left, problem.canonical_right, evidence, problem.relation
        )


def _enforce_cardinality(evidence, problem: ExplainProblem):
    """Drop lower-probability matches that violate the valid-mapping cardinality."""
    relation = problem.relation
    used_left: set[str] = set()
    used_right: set[str] = set()
    from repro.matching.tuple_matching import TupleMapping

    kept = TupleMapping()
    for match in evidence.sorted_by_probability():
        if relation.left_degree_limited and match.left_key in used_left:
            continue
        if relation.right_degree_limited and match.right_key in used_right:
            continue
        kept.add(match)
        used_left.add(match.left_key)
        used_right.add(match.right_key)
    return kept

"""Config-driven fault injection (chaos hooks) at named pipeline sites.

Production code calls :func:`check` (or :func:`corrupt` for byte payloads) at
*fault sites* -- the places where the reliability design says a failure must
be survivable.  With no faults armed these calls are a dictionary probe on an
empty dict, so the fault-free path pays effectively nothing.

Faults are armed either programmatically::

    from repro.reliability import faults

    with faults.inject("plan.lower", "raise"):
        service.explain(request)        # the planner fails; the ladder catches it

or from the environment (picked up by ``python -m repro.service`` and the
chaos CI step)::

    REPRO_FAULTS="cache.spill_load=raise,solve.partition=delay:0.05"

Supported modes:

* ``raise``            -- raise :class:`InjectedFault` at the site;
* ``delay:<seconds>``  -- sleep before proceeding (deadline/chaos testing);
* ``corrupt``          -- at byte-payload sites, mangle the payload
  (truncate and flip bytes) instead of raising.

A rule may be rate-limited: ``times=N`` fires only the first N hits,
``every=N`` fires every Nth hit (deterministic "10% fault rate" is
``every=10``).  Every site registers in :data:`KNOWN_SITES` so the chaos
suite can enumerate and exercise all of them.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

#: Every fault site wired into the pipeline, with the declared behaviour the
#: chaos suite asserts.  ``identical`` means the degradation ladder guarantees
#: a fingerprint-identical result when the site fails; ``typed-error`` means
#: the failure surfaces as a structured, typed exception instead.
KNOWN_SITES: dict[str, str] = {
    "cache.spill_load": "identical",    # corrupt/failed spill read -> cache miss
    "cache.spill_write": "identical",   # failed spill write -> entry dropped
    "plan.lower": "identical",          # planner failure -> naive interpreter
    "stats.analyze": "identical",       # ANALYZE failure -> heuristic cost model
    "solve.partition": "typed-error",   # solver failure -> structured error
    "live.apply_delta": "typed-error",  # ingest failure -> error, state pre-delta
    "runs.align": "identical",          # aligner failure -> brute-force reference
}


class InjectedFault(RuntimeError):
    """The typed error raised by an armed ``raise``-mode fault."""

    def __init__(self, site: str):
        super().__init__(f"injected fault at {site!r}")
        self.site = site


@dataclass
class FaultRule:
    """One armed fault: what to do at a site, and how often."""

    site: str
    mode: str                  # "raise" | "delay" | "corrupt"
    delay: float = 0.0
    times: int | None = None   # fire at most this many times (None = unlimited)
    every: int = 1             # fire on every Nth hit
    hits: int = 0              # total check() calls at this site
    fired: int = 0             # how often the fault actually triggered

    def should_fire(self) -> bool:
        """Advance the hit counter and decide (caller holds the injector lock)."""
        self.hits += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.every > 1 and self.hits % self.every != 0:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """A registry of armed :class:`FaultRule` objects, checked by site name."""

    def __init__(self):
        self._rules: dict[str, FaultRule] = {}
        self._lock = threading.Lock()

    # -- arming ----------------------------------------------------------------------
    def arm(
        self,
        site: str,
        mode: str = "raise",
        *,
        delay: float = 0.0,
        times: int | None = None,
        every: int = 1,
    ) -> FaultRule:
        if mode.startswith("delay:"):
            delay = float(mode.split(":", 1)[1])
            mode = "delay"
        if mode not in ("raise", "delay", "corrupt"):
            raise ValueError(f"unknown fault mode {mode!r}")
        rule = FaultRule(site=site, mode=mode, delay=delay, times=times, every=every)
        with self._lock:
            self._rules[site] = rule
        return rule

    def disarm(self, site: str) -> None:
        with self._lock:
            self._rules.pop(site, None)

    def reset(self) -> None:
        with self._lock:
            self._rules.clear()

    def configure(self, spec: str) -> None:
        """Arm faults from a spec string: ``site=mode[,site=mode...]``."""
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad fault spec {part!r}: expected site=mode")
            site, mode = part.split("=", 1)
            self.arm(site.strip(), mode.strip())

    def load_env(self, variable: str = "REPRO_FAULTS") -> bool:
        """Arm faults from an environment variable; True if any were armed."""
        spec = os.environ.get(variable, "").strip()
        if not spec:
            return False
        self.configure(spec)
        return True

    # -- observation -----------------------------------------------------------------
    def rules(self) -> list[FaultRule]:
        with self._lock:
            return list(self._rules.values())

    def fired(self, site: str) -> int:
        with self._lock:
            rule = self._rules.get(site)
            return rule.fired if rule is not None else 0

    def active(self) -> bool:
        return bool(self._rules)

    # -- the hooks called by production code -----------------------------------------
    def check(self, site: str) -> None:
        """Fire the armed fault for ``site``, if any (raise or delay)."""
        if not self._rules:  # the fault-free fast path: one truthiness test
            return
        with self._lock:
            rule = self._rules.get(site)
            if rule is None or not rule.should_fire():
                return
            mode, delay = rule.mode, rule.delay
        if mode == "delay":
            time.sleep(delay)
        elif mode == "raise":
            raise InjectedFault(site)
        # "corrupt" rules are observed through corrupt(), not check().

    def corrupt(self, site: str, payload: bytes) -> bytes:
        """Mangle ``payload`` when a corrupt-mode fault is armed at ``site``.

        Truncates to half length and flips the leading bytes -- enough to
        defeat both the length and the checksum of a spill envelope, like a
        torn write or bit rot would.
        """
        if not self._rules:
            return payload
        with self._lock:
            rule = self._rules.get(site)
            if rule is None or rule.mode != "corrupt" or not rule.should_fire():
                return payload
        mangled = bytearray(payload[: max(1, len(payload) // 2)])
        for index in range(min(8, len(mangled))):
            mangled[index] ^= 0xFF
        return bytes(mangled)


#: The process-wide injector used by all production fault sites.
FAULTS = FaultInjector()


class inject:
    """Context manager arming one fault on the global injector.

    ::

        with inject("cache.spill_load", "raise", times=1):
            ...
    """

    def __init__(self, site: str, mode: str = "raise", **kwargs):
        self.site = site
        self.mode = mode
        self.kwargs = kwargs
        self.rule: FaultRule | None = None

    def __enter__(self) -> FaultRule:
        self.rule = FAULTS.arm(self.site, self.mode, **self.kwargs)
        return self.rule

    def __exit__(self, *exc_info) -> None:
        FAULTS.disarm(self.site)

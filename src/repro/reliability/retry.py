"""Retry with exponential backoff and jitter.

:func:`retry_call` re-runs a callable on *retryable* exceptions with
exponentially growing, jittered sleeps between attempts.  Jitter is drawn
from a dedicated :class:`random.Random` instance (seedable for deterministic
tests) so retries from many workers do not synchronize into thundering
herds.  Exceptions outside the policy's ``retryable`` tuple propagate
immediately -- a malformed request must never be retried into a different
answer.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How often and how patiently to retry.

    ``attempts`` counts *total* tries (1 = no retries).  The sleep before
    retry ``k`` (1-based) is ``base_delay * multiplier**(k-1)``, capped at
    ``max_delay``, plus uniform jitter in ``[0, jitter * delay]``.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    retryable: tuple = (ConnectionError, TimeoutError, OSError)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be positive, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The jittered sleep before the ``retry_index``-th retry (1-based)."""
        base = min(self.base_delay * self.multiplier ** (retry_index - 1), self.max_delay)
        return base + rng.uniform(0.0, self.jitter * base)


@dataclass
class RetryOutcome:
    """Diagnostics of one :func:`retry_call` invocation."""

    attempts: int = 1
    retried: int = 0
    slept: float = 0.0
    errors: list = field(default_factory=list)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    outcome: RetryOutcome | None = None,
) -> T:
    """Call ``fn`` until it succeeds, the policy is exhausted, or a
    non-retryable exception escapes.

    ``sleep`` and ``rng`` are injectable for tests; ``outcome`` (when given)
    is filled with attempt counts, total sleep and the error strings of the
    failed attempts.
    """
    policy = policy or RetryPolicy()
    rng = rng or random.Random()
    record = outcome if outcome is not None else RetryOutcome()
    for attempt in range(1, policy.attempts + 1):
        record.attempts = attempt
        try:
            return fn()
        except policy.retryable as exc:
            record.errors.append(f"{type(exc).__name__}: {exc}")
            if attempt == policy.attempts:
                raise
            delay = policy.delay(attempt, rng)
            record.retried += 1
            record.slept += delay
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover

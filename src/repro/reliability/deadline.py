"""Cooperative deadlines and cancellation for long-running requests.

A :class:`Deadline` is created once at the edge of a request (the service
engine, a CLI entry point, a test) and threaded down through the pipeline.
Long-running stages call :meth:`Deadline.check` at *checkpoints* -- natural
unit boundaries such as "before solving the next partition" -- so an expired
deadline or a cancellation surfaces as a typed exception within one
checkpoint interval, never as a hang.

Two typed exceptions can leave a checkpoint:

* :class:`DeadlineExceeded` -- the wall-clock budget ran out; carries the
  checkpoint site, the elapsed time and the budget, so callers can report
  exactly where the request was cut off;
* :class:`OperationCancelled` -- a cooperative cancellation (e.g. ``DELETE
  /jobs/<id>`` on a running job) was observed.

Deadlines are measured on the monotonic clock and are safe to share across
threads: the only mutable piece is the optional ``cancel_event``, which is a
``threading.Event``.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class DeadlineExceeded(RuntimeError):
    """A request ran past its wall-clock budget at checkpoint ``site``."""

    def __init__(self, site: str, elapsed: float, budget: float):
        super().__init__(
            f"deadline of {budget:.3f}s exceeded at {site!r} "
            f"(elapsed {elapsed:.3f}s)"
        )
        self.site = site
        self.elapsed = elapsed
        self.budget = budget


class OperationCancelled(RuntimeError):
    """A cooperative cancellation request was observed at checkpoint ``site``."""

    def __init__(self, site: str):
        super().__init__(f"operation cancelled at {site!r}")
        self.site = site


class Deadline:
    """A wall-clock budget plus an optional cancellation flag.

    ``seconds=None`` means unbounded: :meth:`check` then only observes the
    cancellation event, so an unbounded deadline still supports cooperative
    cancellation.  The zero-argument constructor form is the no-op used by
    code paths that always thread a deadline object.
    """

    __slots__ = ("seconds", "started", "cancel_event", "last_site")

    def __init__(
        self,
        seconds: float | None = None,
        *,
        cancel_event: threading.Event | None = None,
    ):
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline seconds must be positive, got {seconds}")
        self.seconds = seconds
        self.started = time.monotonic()
        self.cancel_event = cancel_event
        #: The last checkpoint site observed -- diagnostic only.
        self.last_site = ""

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def after(
        cls, seconds: float | None, *, cancel_event: threading.Event | None = None
    ) -> "Deadline":
        """A deadline ``seconds`` from now (or unbounded when ``None``)."""
        return cls(seconds, cancel_event=cancel_event)

    @classmethod
    def unbounded(cls, *, cancel_event: threading.Event | None = None) -> "Deadline":
        return cls(None, cancel_event=cancel_event)

    # -- observation -----------------------------------------------------------------
    @property
    def bounded(self) -> bool:
        return self.seconds is not None

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def remaining(self) -> Optional[float]:
        """Seconds left (possibly negative), or ``None`` when unbounded."""
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def cancelled(self) -> bool:
        return self.cancel_event is not None and self.cancel_event.is_set()

    # -- the checkpoint protocol -----------------------------------------------------
    def check(self, site: str) -> None:
        """Raise if the budget ran out or a cancellation was requested.

        Cancellation is checked first: a cancelled request should report
        :class:`OperationCancelled` even if its deadline also expired.
        """
        self.last_site = site
        if self.cancelled():
            raise OperationCancelled(site)
        if self.expired():
            raise DeadlineExceeded(site, self.elapsed(), float(self.seconds))

    def to_dict(self) -> dict:
        """JSON-safe description used in response metadata."""
        return {
            "seconds": self.seconds,
            "elapsed": round(self.elapsed(), 6),
            "expired": self.expired(),
            "cancelled": self.cancelled(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = f"{self.seconds:.3f}s" if self.seconds is not None else "unbounded"
        return f"Deadline({budget}, elapsed {self.elapsed():.3f}s)"

"""The reliability core: deadlines, fault injection, breakers and retries.

This package holds the cross-cutting machinery that keeps the explanation
service alive under partial failure:

* :mod:`repro.reliability.deadline` -- cooperative :class:`Deadline` budgets
  propagated from requests down to per-partition solver checkpoints, raising
  typed :class:`DeadlineExceeded` / :class:`OperationCancelled` instead of
  hanging;
* :mod:`repro.reliability.faults` -- the :class:`FaultInjector` chaos hooks
  (``REPRO_FAULTS`` env spec, :func:`inject` context manager) at the named
  sites in :data:`KNOWN_SITES`, which the chaos suite enumerates;
* :mod:`repro.reliability.breaker` -- per-key :class:`CircuitBreaker` with
  open/half-open/closed semantics and a :class:`BreakerRegistry`;
* :mod:`repro.reliability.retry` -- :func:`retry_call` with exponential
  backoff and jitter under a :class:`RetryPolicy`.

Design rule (see the README's "Reliability & degradation" section): every
fallback is *explicit*.  A degraded request reports each ladder rung it took
in its response metadata; silent answer-swapping is never allowed.
"""

from repro.reliability.breaker import BreakerRegistry, CircuitBreaker, CircuitOpenError
from repro.reliability.deadline import Deadline, DeadlineExceeded, OperationCancelled
from repro.reliability.faults import (
    FAULTS,
    FaultInjector,
    FaultRule,
    InjectedFault,
    KNOWN_SITES,
    inject,
)
from repro.reliability.retry import RetryOutcome, RetryPolicy, retry_call

__all__ = [
    "BreakerRegistry",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "OperationCancelled",
    "FAULTS",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "KNOWN_SITES",
    "inject",
    "RetryOutcome",
    "RetryPolicy",
    "retry_call",
]

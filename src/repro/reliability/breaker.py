"""Per-key circuit breakers: stop hammering a dependency that keeps failing.

The service keys breakers by *database name*: a database whose requests keep
failing (corrupt relation, planner bug, poisoned artifacts) trips its breaker
open, and further requests fail fast with :class:`CircuitOpenError` instead
of burning a full pipeline run each -- classic open/half-open/closed
semantics:

* **closed** -- requests flow; consecutive failures are counted;
* **open** -- after ``failure_threshold`` consecutive failures, requests are
  rejected immediately for ``reset_seconds``;
* **half-open** -- after the cool-down one probe request is let through; its
  success closes the breaker, its failure re-opens it.

Breakers are deliberately conservative about what counts as a failure: the
caller decides (the service records only unexpected pipeline errors --
client mistakes, deadline expiry and cancellations are not dependency-health
signals).
"""

from __future__ import annotations

import threading
import time


class CircuitOpenError(RuntimeError):
    """A request was rejected because the key's circuit breaker is open."""

    def __init__(self, key: str, retry_after: float):
        super().__init__(
            f"circuit breaker open for {key!r}; retry in {retry_after:.3f}s"
        )
        self.key = key
        self.retry_after = retry_after


class CircuitBreaker:
    """One key's breaker (thread-safe)."""

    def __init__(self, key: str, *, failure_threshold: int = 5, reset_seconds: float = 30.0):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be positive, got {failure_threshold}")
        if reset_seconds <= 0:
            raise ValueError(f"reset_seconds must be positive, got {reset_seconds}")
        self.key = key
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._half_open_probe = False
        self.total_failures = 0
        self.total_rejections = 0

    # -- state ------------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if time.monotonic() - self._opened_at >= self.reset_seconds:
            return "half-open"
        return "open"

    # -- the protocol -----------------------------------------------------------------
    def acquire(self) -> None:
        """Admit one request or raise :class:`CircuitOpenError`.

        In the half-open state exactly one probe request is admitted at a
        time; concurrent requests keep failing fast until the probe settles.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return
            if state == "half-open" and not self._half_open_probe:
                self._half_open_probe = True
                return
            self.total_rejections += 1
            retry_after = max(
                0.0, self.reset_seconds - (time.monotonic() - float(self._opened_at))
            )
            raise CircuitOpenError(self.key, retry_after)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None
            self._half_open_probe = False

    def record_failure(self) -> None:
        with self._lock:
            self.total_failures += 1
            self._consecutive_failures += 1
            self._half_open_probe = False
            if self._opened_at is not None:
                # A failed half-open probe re-opens for a fresh cool-down.
                self._opened_at = time.monotonic()
            elif self._consecutive_failures >= self.failure_threshold:
                self._opened_at = time.monotonic()

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "total_failures": self.total_failures,
                "total_rejections": self.total_rejections,
            }


class BreakerRegistry:
    """Breakers by key, created on first use with shared thresholds."""

    def __init__(self, *, failure_threshold: int = 5, reset_seconds: float = 30.0):
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            if key not in self._breakers:
                self._breakers[key] = CircuitBreaker(
                    key,
                    failure_threshold=self.failure_threshold,
                    reset_seconds=self.reset_seconds,
                )
            return self._breakers[key]

    def acquire(self, *keys: str) -> None:
        """Admit a request touching every key, or raise for the first open one."""
        for key in keys:
            self.breaker(key).acquire()

    def record_success(self, *keys: str) -> None:
        for key in keys:
            self.breaker(key).record_success()

    def record_failure(self, *keys: str) -> None:
        for key in keys:
            self.breaker(key).record_failure()

    def states(self) -> dict[str, dict]:
        with self._lock:
            breakers = list(self._breakers.values())
        return {breaker.key: breaker.as_dict() for breaker in breakers}

    def any_open(self) -> bool:
        return any(state["state"] != "closed" for state in self.states().values())

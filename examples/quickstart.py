"""Quickstart: explain the disagreement of Figure 1 (Q1 vs Q2).

Two datasets list the undergraduate programs of "University A" in different
ways: D1 has one row per (program, degree), D2 has one row per major per
university.  Counting programs yields 7 vs 6.  Explain3D finds the reason: the
CS program is counted twice in D1 (B.S. and B.A.) but maps to a single "CSE"
major in D2.

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    Explain3D,
    Explain3DConfig,
    Priors,
    Scan,
    TupleMapping,
    TupleMatch,
    col,
    count_query,
    matching,
)


def build_datasets() -> tuple[Database, Database]:
    db1 = Database("D1")
    db1.add_records(
        "D1",
        [
            {"Program": "Accounting", "Degree": "B.S."},
            {"Program": "CS", "Degree": "B.A."},
            {"Program": "CS", "Degree": "B.S."},
            {"Program": "ECE", "Degree": "B.S."},
            {"Program": "EE", "Degree": "B.S."},
            {"Program": "Management", "Degree": "B.A."},
            {"Program": "Design", "Degree": "B.A."},
        ],
    )
    db2 = Database("D2")
    db2.add_records(
        "D2",
        [
            {"Univ": "A", "Major": "Accounting"},
            {"Univ": "A", "Major": "CSE"},
            {"Univ": "A", "Major": "ECE"},
            {"Univ": "A", "Major": "EE"},
            {"Univ": "A", "Major": "Management"},
            {"Univ": "A", "Major": "Design"},
            {"Univ": "B", "Major": "Art"},
        ],
    )
    return db1, db2


def main() -> None:
    db1, db2 = build_datasets()

    # The two semantically similar queries: "how many undergraduate programs
    # does University A offer?"
    q1 = count_query("Q1", Scan("D1"), attribute="Program")
    q2 = count_query("Q2", Scan("D2"), predicate=(col("Univ") == "A"), attribute="Major")

    # The initial probabilistic tuple mapping would normally come from a record
    # linkage tool; here we provide the one from Example 2 of the paper (note
    # the imperfect CS ~ CSE match).
    initial_mapping = TupleMapping(
        [
            TupleMatch("T1:0", "T2:0", 0.95),  # Accounting ~ Accounting
            TupleMatch("T1:1", "T2:1", 0.90),  # CS         ~ CSE
            TupleMatch("T1:2", "T2:2", 0.95),  # ECE        ~ ECE
            TupleMatch("T1:3", "T2:3", 0.95),  # EE         ~ EE
            TupleMatch("T1:4", "T2:4", 0.95),  # Management ~ Management
            TupleMatch("T1:5", "T2:5", 0.95),  # Design     ~ Design
        ]
    )

    engine = Explain3D(Explain3DConfig(partitioning="none", priors=Priors(0.9, 0.9)))
    report = engine.explain(
        q1,
        db1,
        q2,
        db2,
        attribute_matches=matching(("Program", "Major")),
        tuple_mapping=initial_mapping,
    )

    print(report.describe())
    print()
    print("Evidence mapping (the explanation of the explanations):")
    left = report.problem.canonical_left
    right = report.problem.canonical_right
    for match in report.evidence:
        print(
            f"  {left[match.left_key].value('Program'):12s} ~ "
            f"{right[match.right_key].value('Major'):12s} (p={match.probability:.2f})"
        )


if __name__ == "__main__":
    main()

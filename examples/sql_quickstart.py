"""SQL quickstart: a full explain driven by two SQL strings.

The paper defines its workloads as SQL queries over two disjoint databases.
This example poses the academic scenario (program listing vs. NCES-style
statistics) exactly that way: both queries are plain SQL, parsed and bound
against the generated databases by :func:`repro.parse_query`, then fed to the
regular Explain3D pipeline.  The lowered ASTs are fingerprint-identical to
the hand-built queries the dataset ships with, so the report is identical to
the programmatic path.

Run with:  python examples/sql_quickstart.py
"""

from repro import Explain3D, Explain3DConfig, parse_query
from repro.datasets.academic import generate_academic_pair, umass_config
from repro.relational.executor import scalar_result


def main() -> None:
    config = umass_config()
    pair = generate_academic_pair(config)

    sql_left = "SELECT COUNT(Major) FROM Major"
    sql_right = (
        "SELECT SUM(bach_degr) FROM School JOIN Stats ON School.ID = Stats.ID "
        f"WHERE Univ_name = '{config.university}'"
    )
    print("Left  query:", sql_left)
    print("Right query:", sql_right)

    # Parse + bind + lower against the real schemas.  Misspell a column to
    # see the frontend's caret-annotated errors with did-you-mean hints.
    query_left = parse_query(sql_left, pair.db_left, name="Q1")
    query_right = parse_query(sql_right, pair.db_right, name="Q2")

    # Same ASTs as the hand-built dataset queries, down to the fingerprint.
    assert query_left.fingerprint() == pair.query_left.fingerprint()
    assert query_right.fingerprint() == pair.query_right.fingerprint()
    print("Round trip:", query_right.to_sql())

    print(
        f"\nResults: {scalar_result(query_left, pair.db_left):g} (listing) vs "
        f"{scalar_result(query_right, pair.db_right):g} (statistics)"
    )

    engine = Explain3D(
        Explain3DConfig(
            partitioning="components", min_similarity=pair.default_min_similarity
        )
    )
    report = engine.explain(
        query_left,
        pair.db_left,
        query_right,
        pair.db_right,
        attribute_matches=pair.attribute_matches,
    )
    print()
    print(report.explanations.describe(max_items=5))
    print()
    print("Summarized explanations:")
    print(report.summary.describe())


if __name__ == "__main__":
    main()

"""Academic scenario: a program listing vs. an aggregated statistics dataset.

This mirrors Example 1 of the paper: the "UMass-Amherst" listing stores one row
per (major, degree) while the "NCES" statistics dataset stores one row per
program with a ``bach_degr`` count, under a completely different schema, and
the two COUNT/SUM queries disagree.  The example runs the full Explain3D
pipeline (provenance, canonicalization, record-linkage calibration against a
labeled sample, MILP refinement, summarization) and compares its accuracy with
the THRESHOLD and GREEDY baselines.

Run with:  python examples/academic_disagreement.py
"""

from repro import Explain3D, Explain3DConfig
from repro.baselines import GreedyBaseline, ThresholdBaseline, Explain3DMethod
from repro.datasets.academic import generate_academic_pair, umass_config
from repro.evaluation import (
    evaluate_evidence,
    evaluate_explanations,
    format_accuracy_table,
    run_methods,
)


def main() -> None:
    pair = generate_academic_pair(umass_config())
    print(f"Generated pair: {pair.description}")

    # Stage 1: provenance, canonicalization, calibrated initial mapping.
    problem, gold = pair.build_problem()
    print(
        f"Query results: {problem.query_left.name} = {problem.result_left:g} vs "
        f"{problem.query_right.name} = {problem.result_right:g}"
    )
    print(
        f"|P1|={len(problem.provenance_left)}, |T1|={len(problem.canonical_left)}, "
        f"|P2|={len(problem.provenance_right)}, |T2|={len(problem.canonical_right)}, "
        f"|M_tuple|={len(problem.mapping)}"
    )

    # Stages 2-3 through the facade.
    engine = Explain3D(Explain3DConfig(partitioning="components"))
    report = engine.explain_problem(problem)
    print()
    print(report.explanations.describe(max_items=5))
    print()
    print("Summarized explanations (Stage 3):")
    print(report.summary.describe())

    # Accuracy against the gold standard, compared with two baselines.
    explanation_metrics = evaluate_explanations(report.explanations, gold, problem)
    evidence_metrics = evaluate_evidence(report.explanations, gold)
    print()
    print(
        f"Explain3D accuracy: explanations F={explanation_metrics.f_measure:.3f}, "
        f"evidence F={evidence_metrics.f_measure:.3f}"
    )

    result = run_methods(
        [Explain3DMethod(), GreedyBaseline(), ThresholdBaseline(0.9)], problem, gold
    )
    print()
    print(format_accuracy_table(result.evaluations, kind="explanation"))
    print()
    print(format_accuracy_table(result.evaluations, kind="evidence"))


if __name__ == "__main__":
    main()

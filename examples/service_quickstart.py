"""Service quickstart: register databases once, explain many times.

The one-shot pipeline (see ``examples/quickstart.py``) redoes provenance,
tokenization and matching on every call.  The service layer keeps those
Stage-1 artifacts alive across requests: register the two databases once,
then submit as many explain requests as you like -- repeats are report-cache
hits, and config perturbations reuse everything Stage 1 already computed.

Run with:  PYTHONPATH=src python examples/service_quickstart.py
"""

import time

from repro import Explain3DConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.service import ExplainRequest, ExplainService, JobQueue


def main() -> None:
    # A synthetic disagreeing pair (Section 5.3 generator): same SUM query,
    # 20% of tuples dropped or value-corrupted between the two datasets.
    pair = generate_synthetic_pair(
        SyntheticConfig(num_tuples=200, difference_ratio=0.2, vocabulary_size=500)
    )

    # 1. Stand up the long-lived service and register both databases once.
    service = ExplainService()
    service.register_database(pair.db_left, "left")
    service.register_database(pair.db_right, "right")
    print(f"registered databases: {list(service.databases())}")

    request = ExplainRequest(
        pair.query_left, "left", pair.query_right, "right",
        attribute_matches=pair.attribute_matches,
        config=Explain3DConfig(partitioning="smart", batch_size=100),
    )

    # 2. Cold request: the full three-stage pipeline runs and artifacts are cached.
    start = time.perf_counter()
    cold = service.explain(request)
    cold_seconds = time.perf_counter() - start
    print(f"\ncold request: {cold_seconds:.3f}s (cached_report={cold.cached_report})")
    print(cold.report.describe(max_items=3))

    # 3. Warm repeat: a report-cache hit, no recomputation at all.
    start = time.perf_counter()
    warm = service.explain(request)
    warm_seconds = time.perf_counter() - start
    print(
        f"\nwarm repeat: {warm_seconds:.5f}s (cached_report={warm.cached_report}, "
        f"{cold_seconds / max(warm_seconds, 1e-9):.0f}x faster than cold)"
    )

    # 4. Perturb only the solve config: Stage 1 is reused, only Stage 2 re-runs.
    perturbed = service.with_config(request, batch_size=150)
    start = time.perf_counter()
    result = service.explain(perturbed)
    print(
        f"perturbed solve config: {time.perf_counter() - start:.3f}s "
        f"(cached_problem={result.cached_problem}, cached_report={result.cached_report})"
    )

    # 5. The async job queue: submit a batch, await it as a unit.
    queue = JobQueue(service.explain, max_workers=2)
    jobs = queue.submit_batch(
        [request, perturbed, service.with_config(request, min_similarity=0.1)]
    )
    queue.wait_all(jobs, timeout=60)
    print(f"\nasync batch: {[f'{job.id}={job.state.value}' for job in jobs]}")
    queue.shutdown()

    # 6. Cache accounting: every layer reports hits/misses.
    for name, counters in service.stats()["caches"].items():
        print(f"  cache[{name}]: {counters}")


if __name__ == "__main__":
    main()

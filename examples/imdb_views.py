"""IMDb scenario: the same movie universe published as two disagreeing views.

View 1 stores a single genre/country per movie and separates actors from
directors; view 2 keeps all genres in a generic MovieInfo table and merges
people into one Person table.  With ~5% injected errors, semantically similar
queries over the two views disagree.  This example instantiates several of the
paper's query templates and explains each disagreement.

Run with:  python examples/imdb_views.py
"""

from repro import Explain3D, Explain3DConfig
from repro.datasets.imdb import IMDbConfig, generate_imdb_workload
from repro.evaluation import evaluate_evidence, evaluate_explanations


def main() -> None:
    workload = generate_imdb_workload(IMDbConfig(num_movies=400, num_people=400, seed=29))
    years = workload.years_with_movies(minimum=8)
    engine = Explain3D(Explain3DConfig(partitioning="components"))

    instantiations = [
        ("Q3", years[0]),          # number of comedy movies released in <year>
        ("Q5", years[1]),          # total gross for movies released in <year>
        ("Q9", years[2]),          # average runtime for movies released in <year>
        ("Q10", "Horror"),         # actresses who have not starred in any <genre> movie
    ]

    for template, param in instantiations:
        pair = workload.pair(template, param)
        problem, gold = pair.build_problem()
        report = engine.explain_problem(problem)
        explanation_metrics = evaluate_explanations(report.explanations, gold, problem)
        evidence_metrics = evaluate_evidence(report.explanations, gold)

        results = ""
        if problem.result_left is not None and problem.result_right is not None:
            results = f"  results: {problem.result_left:g} vs {problem.result_right:g}"
        print(f"=== {template}({param}){results}")
        print(
            f"    |T1|={len(problem.canonical_left)}, |T2|={len(problem.canonical_right)}, "
            f"|M_tuple|={len(problem.mapping)}"
        )
        print(
            f"    {len(report.explanations.provenance)} provenance + "
            f"{len(report.explanations.value)} value explanations, "
            f"{len(report.evidence)} evidence matches"
        )
        print(
            f"    accuracy: explanations F={explanation_metrics.f_measure:.3f}, "
            f"evidence F={evidence_metrics.f_measure:.3f}"
        )
        for explanation in report.explanations.provenance[:3]:
            side = "view 1" if explanation.side.value == "L" else "view 2"
            relation = problem.canonical_left if explanation.side.value == "L" else problem.canonical_right
            values = relation[explanation.key].values
            print(f"      missing from the other view ({side}): {values}")
        for explanation in report.explanations.value[:3]:
            relation = problem.canonical_left if explanation.side.value == "L" else problem.canonical_right
            values = relation[explanation.key].values
            print(
                f"      wrong contribution: {values} "
                f"{explanation.old_impact:g} -> {explanation.new_impact:g}"
            )
        print()


if __name__ == "__main__":
    main()

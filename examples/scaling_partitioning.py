"""Smart partitioning at scale (Section 4 / Section 5.3).

Generates synthetic dataset pairs of increasing size and compares the basic
algorithm (one MILP for the whole problem) against the smart-partitioning
optimizer with different batch sizes -- the experiment behind Figure 8a,
scaled to laptop sizes.

Run with:  python examples/scaling_partitioning.py
"""

import time

from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.evaluation import evaluate_explanations, format_table


def main() -> None:
    rows = []
    for num_tuples in (100, 300, 600):
        pair = generate_synthetic_pair(
            SyntheticConfig(num_tuples=num_tuples, difference_ratio=0.2, vocabulary_size=1000)
        )
        problem, gold = pair.build_problem()

        row = [num_tuples, len(problem.mapping)]
        for label, config in (
            ("NoOpt", SolveConfig(partitioning="none")),
            ("Batch-100", SolveConfig(partitioning="smart", batch_size=100)),
            ("Batch-300", SolveConfig(partitioning="smart", batch_size=300)),
        ):
            solver = PartitionedSolver(problem, config)
            start = time.perf_counter()
            explanations = solver.solve()
            elapsed = time.perf_counter() - start
            accuracy = evaluate_explanations(explanations, gold, problem).f_measure
            row.append(f"{elapsed:.2f}s (F={accuracy:.2f}, k={solver.stats.num_partitions})")
        rows.append(row)

    print(
        format_table(
            ["n", "|M_tuple|", "NoOpt", "Batch-100", "Batch-300"],
            rows,
            title="Solve time (and accuracy) vs. number of tuples",
        )
    )


if __name__ == "__main__":
    main()

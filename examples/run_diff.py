"""Run-diff workload: explain why two variants of one program disagree.

``repro.datasets.variants`` simulates a tax pipeline run under four program
variants -- a single-threaded reference plus three buggy rewrites (a
vectorized port that rounds half-up, a worker pool with stale shared rate
state, and an async event loop that drops a batch).  Each variant emits its
rows as NDJSON; ``repro.runs`` aligns the run files by key, classifies the
disagreements, and bridges the aligned pair into the unchanged Explain3D
pipeline.

Run with:  python examples/run_diff.py
"""

import tempfile

from repro.datasets.variants import VariantsConfig, generate_variant_runs
from repro.runs import align_runs, build_run_problem, load_run


def main() -> None:
    scenario = generate_variant_runs(VariantsConfig(num_rows=40, seed=7, stale_stride=11))

    with tempfile.TemporaryDirectory() as tmp:
        paths = scenario.write(tmp)  # <variant>.ndjson + .schema.json sidecars
        reference = load_run(paths["single_thread"])

        print("Disagreements of each variant against the single-thread reference:")
        for variant in ("vectorized", "shared_state", "async_event_loop"):
            run = load_run(paths[variant])
            alignment = align_runs(reference.relation, run.relation, reference.key)
            counts = alignment.counts()
            summary = ", ".join(f"{kind}={count}" for kind, count in counts.items())
            print(f"  {variant:16s} {summary or 'identical'}")

        # Deep-dive one pair: the stale-shared-state worker pool.
        print()
        suspect = load_run(paths["shared_state"])
        alignment = align_runs(reference.relation, suspect.relation, reference.key)
        print(alignment.describe(limit=5))

        # Bridge the aligned pair into the full pipeline: the runs become a
        # disjoint database pair with canonical SUM queries over the column
        # that actually diverges, and the MILP explains the gap.
        problem = build_run_problem(reference, suspect)
        report = problem.explain()
        print()
        print(f"Explaining SUM({problem.compare}) of {problem.relation_left} "
              f"vs {problem.relation_right}:")
        print(report.describe())


if __name__ == "__main__":
    main()

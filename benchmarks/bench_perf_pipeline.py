"""Machine-readable pipeline performance benchmark (Stage 1 + Stage 2).

Times the two dominant wall-clock costs of the reproduction:

* **Stage 1 candidate matching** -- the vectorized kernel (per-tuple feature
  cache + batched NumPy/SciPy scoring) against the seed's inner loop: per-pair
  scalar scoring that re-tokenizes every attribute value for every compared
  pair.  Both paths run blocking and build the same ``CandidateMatch`` list,
  so the ratio isolates the re-tokenization + vectorization win.
* **Stage 2 partitioned solving** -- ``workers=1`` sequential solving against
  the pool-dispatched parallel path on a multi-partition workload.

Each timed path runs ``REPEATS`` times and the best time is kept (the
problems are deterministic; the minimum removes scheduler noise).
Equivalence (identical candidates, identical merged objectives) is asserted
on every timed pair of paths -- the script fails loudly rather than report a
speedup for a divergent result.

Results are written to ``BENCH_pipeline.json`` at the repository root so
future PRs have a perf trajectory to compare against.  Run with::

    PYTHONPATH=src python benchmarks/bench_perf_pipeline.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.datasets.imdb import IMDbConfig, generate_imdb_workload
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.matching.blocking import TokenBlocker
from repro.matching.similarity import combined_similarity
from repro.matching.tuple_matching import CandidateMatch, generate_candidates

RESULT_PATH = ROOT / "BENCH_pipeline.json"
REPEATS = 9


def _best_of(function, repeats=REPEATS):
    """Best wall-clock time of ``repeats`` runs, plus the (deterministic) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_stage1(name, left_tuples, right_tuples, attribute_matches, *, min_similarity=0.0):
    """Time the seed's scalar candidate generation vs the vectorized kernel."""
    attribute_pairs = attribute_matches.attribute_pairs()
    left_values = [t.values for t in left_tuples]
    right_values = [t.values for t in right_tuples]
    left_keys = [t.key for t in left_tuples]
    right_keys = [t.key for t in right_tuples]

    def reference():
        # The seed inner loop: blocking, then combined_similarity per pair
        # (which re-tokenizes both tuples' values on every call).
        blocker = TokenBlocker(attribute_pairs)
        candidates = []
        for i, j in blocker.candidate_pairs(left_values, right_values):
            similarity = combined_similarity(left_values[i], right_values[j], attribute_pairs)
            if similarity > min_similarity:
                candidates.append(CandidateMatch(left_keys[i], right_keys[j], similarity))
        return candidates

    def vectorized():
        return generate_candidates(
            left_tuples,
            right_tuples,
            attribute_matches,
            min_similarity=min_similarity,
            use_blocking=True,
            block_threshold=0,
        )

    reference_seconds, reference_result = _best_of(reference)
    vectorized_seconds, vectorized_result = _best_of(vectorized)
    if reference_result != vectorized_result:
        raise AssertionError(f"{name}: vectorized candidates diverge from the scalar reference")

    entry = {
        "workload": name,
        "left_tuples": len(left_tuples),
        "right_tuples": len(right_tuples),
        "candidates": len(vectorized_result),
        "reference_seconds": round(reference_seconds, 6),
        "vectorized_seconds": round(vectorized_seconds, 6),
        "speedup": round(reference_seconds / vectorized_seconds, 2) if vectorized_seconds else None,
    }
    print(
        f"[stage1] {name}: {entry['candidates']} candidates, scalar {reference_seconds:.4f}s "
        f"-> vectorized {vectorized_seconds:.4f}s ({entry['speedup']}x)"
    )
    return entry


def bench_stage2(name, problem, *, partitioning="smart", batch_size=60):
    """Time workers=1 vs pooled solving; assert identical merged results."""
    workers = max(os.cpu_count() or 1, 2)
    sequential_solver = PartitionedSolver(
        problem, SolveConfig(partitioning=partitioning, batch_size=batch_size, workers=1)
    )
    sequential_seconds, sequential = _best_of(sequential_solver.solve, repeats=3)

    parallel_solver = PartitionedSolver(
        problem,
        SolveConfig(
            partitioning=partitioning, batch_size=batch_size, workers=workers, executor="thread"
        ),
    )
    parallel_seconds, parallel = _best_of(parallel_solver.solve, repeats=3)

    if parallel.objective != sequential.objective:
        raise AssertionError(f"{name}: parallel merged objective diverges from sequential")

    entry = {
        "workload": name,
        "partitioning": partitioning,
        "batch_size": batch_size,
        "partitions": sequential_solver.stats.num_partitions,
        "matches": len(problem.mapping),
        "sequential_seconds": round(sequential_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "parallel_workers": parallel_solver.stats.workers_used,
        "speedup": round(sequential_seconds / parallel_seconds, 2) if parallel_seconds else None,
        "objectives_equal": True,
    }
    print(
        f"[stage2] {name}: {entry['partitions']} partitions, sequential "
        f"{sequential_seconds:.4f}s -> parallel({entry['parallel_workers']}) "
        f"{parallel_seconds:.4f}s ({entry['speedup']}x)"
    )
    return entry


def main() -> dict:
    results = {"cpu_count": os.cpu_count(), "stage1": [], "stage2": []}

    # -- Stage 1: the Section 5.3 synthetic generator at n=400 ---------------------------
    for vocabulary in (1000, 300):
        pair = generate_synthetic_pair(
            SyntheticConfig(num_tuples=400, difference_ratio=0.2, vocabulary_size=vocabulary)
        )
        problem, _ = pair.build_problem()
        results["stage1"].append(
            bench_stage1(
                f"synthetic_n400_v{vocabulary}",
                problem.canonical_left.tuples,
                problem.canonical_right.tuples,
                problem.attribute_matches,
            )
        )

    # -- Stage 1: IMDb genre view (mixed string + numeric matched attributes) -----------
    workload = generate_imdb_workload(IMDbConfig(num_movies=400, num_people=400, seed=17))
    imdb_pair = workload.pair("Q10", "Horror")
    imdb_problem, _ = imdb_pair.build_problem()
    results["stage1"].append(
        bench_stage1(
            "imdb_q10_horror",
            imdb_problem.canonical_left.tuples,
            imdb_problem.canonical_right.tuples,
            imdb_problem.attribute_matches,
            min_similarity=imdb_pair.default_min_similarity,
        )
    )

    # -- Stage 2: multi-partition synthetic solve ---------------------------------------
    solve_pair = generate_synthetic_pair(
        SyntheticConfig(num_tuples=240, difference_ratio=0.2, vocabulary_size=1000)
    )
    solve_problem, _ = solve_pair.build_problem()
    results["stage2"].append(bench_stage2("synthetic_n240", solve_problem, batch_size=60))

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()

"""Service-layer benchmark: cold vs warm request throughput.

Simulates the workload the service layer exists for -- a practitioner probing
the *same* dataset pair with many successive requests (repeats plus config
perturbations).  Three passes run over the same request sequence:

* **direct** -- one-shot ``Explain3D.explain()`` per request (the pre-service
  baseline: every request redoes provenance, tokenization, matching);
* **cold**   -- a fresh :class:`ExplainService` seeing the sequence for the
  first time (artifact caches fill as it goes);
* **warm**   -- the same service seeing the sequence again (report-cache hits).

Result equivalence between the direct and the served reports is asserted for
every request, so a reported speedup is always for identical output.

A fourth **reliability** section measures the cost of the reliability layer:

* fault-free overhead -- warm request latency with a bounded deadline (every
  cooperative checkpoint active) vs. the unbounded fast path, asserted below
  ``MAX_RELIABILITY_OVERHEAD`` (median over interleaved passes, plus a small
  absolute epsilon so sub-millisecond timings cannot flake the gate);
* degraded mode -- p50/p99 latency and correctness counts with 10% of cache
  spill loads failing (``cache.spill_load=raise`` with ``every=10``): every
  injected fault must degrade to a logged recompute, never a wrong answer.

Results (including cache hit/miss counters) go to ``BENCH_service.json``.
Run with::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.explain3d import Explain3D, Explain3DConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.reliability import FAULTS
from repro.service import ExplainRequest, ExplainService, ServiceConfig

RESULT_PATH = ROOT / "BENCH_service.json"
MIN_WARM_SPEEDUP = 3.0
MAX_RELIABILITY_OVERHEAD = 0.05   # fault-free deadline-checked path vs fast path
OVERHEAD_EPSILON_SECONDS = 0.002  # absolute slack: warm passes are ~ms-scale
FAULT_EVERY = 10                  # every 10th spill load fails -> 10% fault rate


def _reports_equal(a, b) -> bool:
    return (
        a.explanations.explanation_identities() == b.explanations.explanation_identities()
        and a.explanations.evidence_pairs() == b.explanations.evidence_pairs()
        and abs(a.explanations.objective - b.explanations.objective) < 1e-9
    )


def build_workload(num_tuples: int = 300):
    """One dataset pair + a request mix of repeats and config perturbations."""
    pair = generate_synthetic_pair(
        SyntheticConfig(num_tuples=num_tuples, difference_ratio=0.2, vocabulary_size=500)
    )
    base = Explain3DConfig(partitioning="smart", batch_size=100)
    configs = [
        base,
        Explain3DConfig(partitioning="smart", batch_size=100),        # exact repeat
        Explain3DConfig(partitioning="smart", batch_size=150),        # solve perturbation
        Explain3DConfig(partitioning="smart", batch_size=100,
                        min_similarity=0.1),                          # linkage perturbation
        Explain3DConfig(partitioning="components"),                   # solve perturbation
        base,                                                         # exact repeat
    ]
    requests = [
        ExplainRequest(
            pair.query_left, "left", pair.query_right, "right",
            attribute_matches=pair.attribute_matches, config=config,
        )
        for config in configs
    ]
    return pair, requests


def run_direct(pair, requests):
    """The pre-service baseline: every request is a full one-shot pipeline."""
    reports = []
    start = time.perf_counter()
    for request in requests:
        engine = Explain3D(request.config)
        reports.append(
            engine.explain(
                pair.query_left, pair.db_left, pair.query_right, pair.db_right,
                attribute_matches=pair.attribute_matches,
            )
        )
    return time.perf_counter() - start, reports


def run_served(service, requests):
    reports = []
    start = time.perf_counter()
    for request in requests:
        reports.append(service.explain(request).report)
    return time.perf_counter() - start, reports


def run_latency_pass(service, requests, deadline_seconds=None):
    """One pass over the sequence, timed per request."""
    latencies, reports = [], []
    for request in requests:
        timed = (
            request
            if deadline_seconds is None
            else replace(request, deadline_seconds=deadline_seconds)
        )
        start = time.perf_counter()
        reports.append(service.explain(timed).report)
        latencies.append(time.perf_counter() - start)
    return latencies, reports


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def measure_reliability_overhead(service, requests, passes=12):
    """Median warm latency: unbounded fast path vs. deadline-checked path.

    A generous bounded deadline keeps every cooperative checkpoint active
    without ever firing, so the delta is pure reliability-layer bookkeeping.
    Passes are interleaved so clock drift and cache temperature hit both
    sides equally.
    """
    baseline, guarded = [], []
    for _ in range(passes):
        latencies, _ = run_latency_pass(service, requests)
        baseline.extend(latencies)
        latencies, _ = run_latency_pass(service, requests, deadline_seconds=300.0)
        guarded.extend(latencies)
    return statistics.median(baseline), statistics.median(guarded)


def run_degraded(pair, requests, direct_reports, passes=10):
    """Warm latency and correctness with 10% of cache spill loads failing.

    A deliberately tiny in-memory cache over a spill directory makes every
    warm request take the disk path; ``cache.spill_load=raise`` with
    ``every=10`` then fails one load in ten.  Each injected fault must turn
    into a logged miss plus recompute -- the served answers are asserted
    equal to the direct baseline for every request of every pass.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as spill_dir:
        service = ExplainService(
            ServiceConfig(cache_entries=1, report_cache_entries=1, spill_dir=spill_dir)
        )
        service.register_database(pair.db_left, "left")
        service.register_database(pair.db_right, "right")
        run_served(service, requests)  # cold fill: evictions spill to disk

        clean = []
        for _ in range(passes):
            latencies, _ = run_latency_pass(service, requests)
            clean.extend(latencies)

        faulted, correct, total = [], 0, 0
        FAULTS.arm("cache.spill_load", "raise", every=FAULT_EVERY)
        try:
            for _ in range(passes):
                latencies, reports = run_latency_pass(service, requests)
                faulted.extend(latencies)
                for index, report in enumerate(reports):
                    total += 1
                    correct += _reports_equal(direct_reports[index], report)
            injected = FAULTS.fired("cache.spill_load")
        finally:
            FAULTS.reset()
        spill_stats = service.stats()["total"]

    if injected == 0:
        raise AssertionError("degraded pass never hit a spill load: nothing was measured")
    if correct != total:
        raise AssertionError(
            f"degraded mode returned wrong answers: {correct}/{total} correct"
        )
    return {
        "fault_site": "cache.spill_load",
        "fault_rate": f"1/{FAULT_EVERY}",
        "injected_faults": injected,
        "requests": total,
        "correct_reports": correct,
        "spill_errors": spill_stats["spill_errors"],
        "clean_p50_seconds": round(_percentile(clean, 0.50), 6),
        "clean_p99_seconds": round(_percentile(clean, 0.99), 6),
        "faulted_p50_seconds": round(_percentile(faulted, 0.50), 6),
        "faulted_p99_seconds": round(_percentile(faulted, 0.99), 6),
    }


def main() -> dict:
    pair, requests = build_workload()

    direct_seconds, direct_reports = run_direct(pair, requests)

    service = ExplainService()
    service.register_database(pair.db_left, "left")
    service.register_database(pair.db_right, "right")
    cold_seconds, cold_reports = run_served(service, requests)
    cold_stats = service.stats()
    warm_seconds, warm_reports = run_served(service, requests)
    warm_stats = service.stats()

    for index, direct_report in enumerate(direct_reports):
        if not _reports_equal(direct_report, cold_reports[index]):
            raise AssertionError(f"request {index}: cold service report diverges from direct")
        if not _reports_equal(direct_report, warm_reports[index]):
            raise AssertionError(f"request {index}: warm service report diverges from direct")

    fast_median, guarded_median = measure_reliability_overhead(service, requests)
    overhead = (guarded_median - fast_median) / fast_median if fast_median else 0.0
    degraded = run_degraded(pair, requests, direct_reports)

    warm_speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    results = {
        "workload": {
            "dataset": pair.name,
            "requests_per_pass": len(requests),
            "distinct_reports": len({id(r) for r in warm_reports}),
        },
        "direct_seconds": round(direct_seconds, 6),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "cold_vs_direct_speedup": round(direct_seconds / cold_seconds, 2) if cold_seconds else None,
        "warm_vs_cold_speedup": round(warm_speedup, 2),
        "cache_stats_after_cold": cold_stats["caches"],
        "cache_stats_after_warm": warm_stats["caches"],
        "reports_equivalent": True,
        "reliability": {
            "fast_path_median_seconds": round(fast_median, 6),
            "deadline_checked_median_seconds": round(guarded_median, 6),
            "fault_free_overhead": round(overhead, 4),
            "max_fault_free_overhead": MAX_RELIABILITY_OVERHEAD,
            "overhead_epsilon_seconds": OVERHEAD_EPSILON_SECONDS,
            "degraded_mode": degraded,
        },
    }

    print(
        f"[service] {len(requests)} requests: direct {direct_seconds:.4f}s, "
        f"cold service {cold_seconds:.4f}s "
        f"({results['cold_vs_direct_speedup']}x vs direct), "
        f"warm service {warm_seconds:.4f}s ({results['warm_vs_cold_speedup']}x vs cold)"
    )
    report_stats = warm_stats["caches"]["report"]
    print(
        f"[service] report cache: {report_stats['hits']} hits / "
        f"{report_stats['misses']} misses; "
        f"candidates cache: {warm_stats['caches']['candidates']['hits']} hits"
    )

    print(
        f"[service] reliability: fault-free overhead "
        f"{overhead * 100:.2f}% (fast {fast_median * 1e3:.3f}ms vs guarded "
        f"{guarded_median * 1e3:.3f}ms); degraded mode "
        f"{degraded['correct_reports']}/{degraded['requests']} correct under "
        f"{degraded['injected_faults']} injected spill faults "
        f"(p50 {degraded['faulted_p50_seconds'] * 1e3:.3f}ms, "
        f"p99 {degraded['faulted_p99_seconds'] * 1e3:.3f}ms)"
    )

    if warm_speedup < MIN_WARM_SPEEDUP:
        raise AssertionError(
            f"warm pass only {warm_speedup:.2f}x faster than cold "
            f"(acceptance floor is {MIN_WARM_SPEEDUP}x)"
        )
    if guarded_median > fast_median * (1 + MAX_RELIABILITY_OVERHEAD) + OVERHEAD_EPSILON_SECONDS:
        raise AssertionError(
            f"fault-free reliability overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_RELIABILITY_OVERHEAD * 100:.0f}% "
            f"({fast_median * 1e3:.3f}ms -> {guarded_median * 1e3:.3f}ms)"
        )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()

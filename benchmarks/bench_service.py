"""Service-layer benchmark: cold vs warm request throughput.

Simulates the workload the service layer exists for -- a practitioner probing
the *same* dataset pair with many successive requests (repeats plus config
perturbations).  Three passes run over the same request sequence:

* **direct** -- one-shot ``Explain3D.explain()`` per request (the pre-service
  baseline: every request redoes provenance, tokenization, matching);
* **cold**   -- a fresh :class:`ExplainService` seeing the sequence for the
  first time (artifact caches fill as it goes);
* **warm**   -- the same service seeing the sequence again (report-cache hits).

Result equivalence between the direct and the served reports is asserted for
every request, so a reported speedup is always for identical output.  Results
(including cache hit/miss counters) go to ``BENCH_service.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.explain3d import Explain3D, Explain3DConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.service import ExplainRequest, ExplainService

RESULT_PATH = ROOT / "BENCH_service.json"
MIN_WARM_SPEEDUP = 3.0


def _reports_equal(a, b) -> bool:
    return (
        a.explanations.explanation_identities() == b.explanations.explanation_identities()
        and a.explanations.evidence_pairs() == b.explanations.evidence_pairs()
        and abs(a.explanations.objective - b.explanations.objective) < 1e-9
    )


def build_workload(num_tuples: int = 300):
    """One dataset pair + a request mix of repeats and config perturbations."""
    pair = generate_synthetic_pair(
        SyntheticConfig(num_tuples=num_tuples, difference_ratio=0.2, vocabulary_size=500)
    )
    base = Explain3DConfig(partitioning="smart", batch_size=100)
    configs = [
        base,
        Explain3DConfig(partitioning="smart", batch_size=100),        # exact repeat
        Explain3DConfig(partitioning="smart", batch_size=150),        # solve perturbation
        Explain3DConfig(partitioning="smart", batch_size=100,
                        min_similarity=0.1),                          # linkage perturbation
        Explain3DConfig(partitioning="components"),                   # solve perturbation
        base,                                                         # exact repeat
    ]
    requests = [
        ExplainRequest(
            pair.query_left, "left", pair.query_right, "right",
            attribute_matches=pair.attribute_matches, config=config,
        )
        for config in configs
    ]
    return pair, requests


def run_direct(pair, requests):
    """The pre-service baseline: every request is a full one-shot pipeline."""
    reports = []
    start = time.perf_counter()
    for request in requests:
        engine = Explain3D(request.config)
        reports.append(
            engine.explain(
                pair.query_left, pair.db_left, pair.query_right, pair.db_right,
                attribute_matches=pair.attribute_matches,
            )
        )
    return time.perf_counter() - start, reports


def run_served(service, requests):
    reports = []
    start = time.perf_counter()
    for request in requests:
        reports.append(service.explain(request).report)
    return time.perf_counter() - start, reports


def main() -> dict:
    pair, requests = build_workload()

    direct_seconds, direct_reports = run_direct(pair, requests)

    service = ExplainService()
    service.register_database(pair.db_left, "left")
    service.register_database(pair.db_right, "right")
    cold_seconds, cold_reports = run_served(service, requests)
    cold_stats = service.stats()
    warm_seconds, warm_reports = run_served(service, requests)
    warm_stats = service.stats()

    for index, direct_report in enumerate(direct_reports):
        if not _reports_equal(direct_report, cold_reports[index]):
            raise AssertionError(f"request {index}: cold service report diverges from direct")
        if not _reports_equal(direct_report, warm_reports[index]):
            raise AssertionError(f"request {index}: warm service report diverges from direct")

    warm_speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    results = {
        "workload": {
            "dataset": pair.name,
            "requests_per_pass": len(requests),
            "distinct_reports": len({id(r) for r in warm_reports}),
        },
        "direct_seconds": round(direct_seconds, 6),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "cold_vs_direct_speedup": round(direct_seconds / cold_seconds, 2) if cold_seconds else None,
        "warm_vs_cold_speedup": round(warm_speedup, 2),
        "cache_stats_after_cold": cold_stats["caches"],
        "cache_stats_after_warm": warm_stats["caches"],
        "reports_equivalent": True,
    }

    print(
        f"[service] {len(requests)} requests: direct {direct_seconds:.4f}s, "
        f"cold service {cold_seconds:.4f}s "
        f"({results['cold_vs_direct_speedup']}x vs direct), "
        f"warm service {warm_seconds:.4f}s ({results['warm_vs_cold_speedup']}x vs cold)"
    )
    report_stats = warm_stats["caches"]["report"]
    print(
        f"[service] report cache: {report_stats['hits']} hits / "
        f"{report_stats['misses']} misses; "
        f"candidates cache: {warm_stats['caches']['candidates']['hits']} hits"
    )

    if warm_speedup < MIN_WARM_SPEEDUP:
        raise AssertionError(
            f"warm pass only {warm_speedup:.2f}x faster than cold "
            f"(acceptance floor is {MIN_WARM_SPEEDUP}x)"
        )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()

"""Service-layer benchmark: cold vs warm request throughput.

Simulates the workload the service layer exists for -- a practitioner probing
the *same* dataset pair with many successive requests (repeats plus config
perturbations).  Three passes run over the same request sequence:

* **direct** -- one-shot ``Explain3D.explain()`` per request (the pre-service
  baseline: every request redoes provenance, tokenization, matching);
* **cold**   -- a fresh :class:`ExplainService` seeing the sequence for the
  first time (artifact caches fill as it goes);
* **warm**   -- the same service seeing the sequence again (report-cache hits).

Result equivalence between the direct and the served reports is asserted for
every request, so a reported speedup is always for identical output.

A fourth **reliability** section measures the cost of the reliability layer:

* fault-free overhead -- warm request latency with a bounded deadline (every
  cooperative checkpoint active) vs. the unbounded fast path, asserted below
  ``MAX_RELIABILITY_OVERHEAD`` (median over interleaved passes, plus a small
  absolute epsilon so sub-millisecond timings cannot flake the gate);
* degraded mode -- p50/p99 latency and correctness counts with 10% of cache
  spill loads failing (``cache.spill_load=raise`` with ``every=10``): every
  injected fault must degrade to a logged recompute, never a wrong answer.

Results (including cache hit/miss counters) go to ``BENCH_service.json``.
Run with::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.core.explain3d import Explain3D, Explain3DConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.reliability import FAULTS
from repro.service import ExplainRequest, ExplainService, ServiceConfig

RESULT_PATH = ROOT / "BENCH_service.json"
MIN_WARM_SPEEDUP = 3.0
MAX_RELIABILITY_OVERHEAD = 0.05   # fault-free deadline-checked path vs fast path
OVERHEAD_EPSILON_SECONDS = 0.002  # absolute slack: warm passes are ~ms-scale
FAULT_EVERY = 10                  # every 10th spill load fails -> 10% fault rate

FLEET_PAIRS = 8                   # distinct db pairs so the ring spreads load
FLEET_PAIR_ROWS = 40              # rows per side; mostly-unique values keep a
                                  # cold explain at ~150ms of real pipeline work
FLEET_CLIENTS = 4                 # concurrent client threads in the load test
FLEET_ROUNDS = 2                  # times each client walks the pair list per pass
FLEET_PASSES = 3                  # alternating measurement passes (best-of)
FLEET_EXTRA_PASSES = 5            # extra alternating passes if the gate misses
FLEET_MIN_SPEEDUP = 1.5           # 2-worker vs 1-worker throughput, multi-core
FLEET_MULTICORE_THRESHOLD = 4     # cores needed before the 1.5x gate applies
                                  # (below it the gate relaxes to 1.0x, recorded)


def _reports_equal(a, b) -> bool:
    return (
        a.explanations.explanation_identities() == b.explanations.explanation_identities()
        and a.explanations.evidence_pairs() == b.explanations.evidence_pairs()
        and abs(a.explanations.objective - b.explanations.objective) < 1e-9
    )


def build_workload(num_tuples: int = 300):
    """One dataset pair + a request mix of repeats and config perturbations."""
    pair = generate_synthetic_pair(
        SyntheticConfig(num_tuples=num_tuples, difference_ratio=0.2, vocabulary_size=500)
    )
    base = Explain3DConfig(partitioning="smart", batch_size=100)
    configs = [
        base,
        Explain3DConfig(partitioning="smart", batch_size=100),        # exact repeat
        Explain3DConfig(partitioning="smart", batch_size=150),        # solve perturbation
        Explain3DConfig(partitioning="smart", batch_size=100,
                        min_similarity=0.1),                          # linkage perturbation
        Explain3DConfig(partitioning="components"),                   # solve perturbation
        base,                                                         # exact repeat
    ]
    requests = [
        ExplainRequest(
            pair.query_left, "left", pair.query_right, "right",
            attribute_matches=pair.attribute_matches, config=config,
        )
        for config in configs
    ]
    return pair, requests


def run_direct(pair, requests):
    """The pre-service baseline: every request is a full one-shot pipeline."""
    reports = []
    start = time.perf_counter()
    for request in requests:
        engine = Explain3D(request.config)
        reports.append(
            engine.explain(
                pair.query_left, pair.db_left, pair.query_right, pair.db_right,
                attribute_matches=pair.attribute_matches,
            )
        )
    return time.perf_counter() - start, reports


def run_served(service, requests):
    reports = []
    start = time.perf_counter()
    for request in requests:
        reports.append(service.explain(request).report)
    return time.perf_counter() - start, reports


def run_latency_pass(service, requests, deadline_seconds=None):
    """One pass over the sequence, timed per request."""
    latencies, reports = [], []
    for request in requests:
        timed = (
            request
            if deadline_seconds is None
            else replace(request, deadline_seconds=deadline_seconds)
        )
        start = time.perf_counter()
        reports.append(service.explain(timed).report)
        latencies.append(time.perf_counter() - start)
    return latencies, reports


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def measure_reliability_overhead(service, requests, passes=12):
    """Median warm latency: unbounded fast path vs. deadline-checked path.

    A generous bounded deadline keeps every cooperative checkpoint active
    without ever firing, so the delta is pure reliability-layer bookkeeping.
    Passes are interleaved so clock drift and cache temperature hit both
    sides equally.
    """
    baseline, guarded = [], []
    for _ in range(passes):
        latencies, _ = run_latency_pass(service, requests)
        baseline.extend(latencies)
        latencies, _ = run_latency_pass(service, requests, deadline_seconds=300.0)
        guarded.extend(latencies)
    return statistics.median(baseline), statistics.median(guarded)


def run_degraded(pair, requests, direct_reports, passes=10):
    """Warm latency and correctness with 10% of cache spill loads failing.

    A deliberately tiny in-memory cache over a spill directory makes every
    warm request take the disk path; ``cache.spill_load=raise`` with
    ``every=10`` then fails one load in ten.  Each injected fault must turn
    into a logged miss plus recompute -- the served answers are asserted
    equal to the direct baseline for every request of every pass.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as spill_dir:
        service = ExplainService(
            ServiceConfig(cache_entries=1, report_cache_entries=1, spill_dir=spill_dir)
        )
        service.register_database(pair.db_left, "left")
        service.register_database(pair.db_right, "right")
        run_served(service, requests)  # cold fill: evictions spill to disk

        clean = []
        for _ in range(passes):
            latencies, _ = run_latency_pass(service, requests)
            clean.extend(latencies)

        faulted, correct, total = [], 0, 0
        FAULTS.arm("cache.spill_load", "raise", every=FAULT_EVERY)
        try:
            for _ in range(passes):
                latencies, reports = run_latency_pass(service, requests)
                faulted.extend(latencies)
                for index, report in enumerate(reports):
                    total += 1
                    correct += _reports_equal(direct_reports[index], report)
            injected = FAULTS.fired("cache.spill_load")
        finally:
            FAULTS.reset()
        spill_stats = service.stats()["total"]

    if injected == 0:
        raise AssertionError("degraded pass never hit a spill load: nothing was measured")
    if correct != total:
        raise AssertionError(
            f"degraded mode returned wrong answers: {correct}/{total} correct"
        )
    return {
        "fault_site": "cache.spill_load",
        "fault_rate": f"1/{FAULT_EVERY}",
        "injected_faults": injected,
        "requests": total,
        "correct_reports": correct,
        "spill_errors": spill_stats["spill_errors"],
        "clean_p50_seconds": round(_percentile(clean, 0.50), 6),
        "clean_p99_seconds": round(_percentile(clean, 0.99), 6),
        "faulted_p50_seconds": round(_percentile(faulted, 0.50), 6),
        "faulted_p99_seconds": round(_percentile(faulted, 0.99), 6),
    }


def fleet_pair(index: int) -> tuple[str, dict, str, dict, dict]:
    """One bench database pair: mostly-unique values -> a real matching/MILP.

    Unlike the tiny catalog pairs of the fleet smokes, these carry
    ``FLEET_PAIR_ROWS`` distinct attribute values per side, so a cold
    explain is ~150ms of genuine pipeline compute -- what a throughput
    measurement should be made of.  ``index`` salts every value, giving
    each pair its own fingerprints and its own ring placement.
    """
    left_name, right_name = f"BL_{index}", f"BR_{index}"
    rows = FLEET_PAIR_ROWS
    left = {
        left_name: [
            {"Program": f"Prog {j} Sec{index}", "Degree": "B.S." if j % 2 else "B.A."}
            for j in range(rows)
        ]
    }
    right = {
        right_name: [
            {
                "Univ": "A" if j % 3 else "B",
                "Major": f"Prog {j} Sec{index}" if j % 5 else f"Major {j} Sec{index}",
            }
            for j in range(rows)
        ]
    }
    payload = {
        "database_left": left_name,
        "query_left": {"name": "Q1", "kind": "count", "relation": left_name,
                       "attribute": "Program"},
        "database_right": right_name,
        "query_right": {
            "name": "Q2", "kind": "count", "relation": right_name,
            "attribute": "Major",
            "where": [{"column": "Univ", "op": "=", "value": "A"}],
        },
        "attribute_matches": [["Program", "Major"]],
        "config": {"partitioning": "smart"},
    }
    return left_name, left, right_name, right, payload


class _FleetUnderTest:
    """One booted fleet (router + N subprocess workers) behind a client URL."""

    def __init__(self, worker_count: int, pairs):
        from repro.fleet.router import FleetRouter, serve_router_in_background
        from repro.fleet.shared_cache import SharedCacheTier
        from repro.fleet.worker import WorkerPool, WorkerSpec
        from repro.service.api import ServiceClient

        self.worker_count = worker_count
        self.tier = SharedCacheTier()
        self.pool = WorkerPool(WorkerSpec(spill_dir=self.tier.directory))
        workers = self.pool.spawn(worker_count)
        self.router = FleetRouter(workers, pool=self.pool, shared_cache=self.tier)
        self.server, _ = serve_router_in_background(self.router)
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"
        client = ServiceClient(self.url, timeout=120.0)
        for left_name, left, right_name, right, _ in pairs:
            client.register_database(left_name, left)
            client.register_database(right_name, right)

    def close(self):
        self.server.shutdown()
        self.router.shutdown()
        self.pool.stop()
        self.tier.cleanup()


def _fleet_load_pass(url: str, pairs, clients: int, rounds: int):
    """One concurrent-clients pass; returns (throughput_rps, latencies, answers).

    Each client thread walks the pair list from its own offset, so at any
    instant the in-flight requests target *different* database pairs --
    measuring real routed load rather than single-flight collapse.  The
    canonical form of every response comes back (answers[pair_index]) so the
    caller can assert equivalence outside the timed window.
    """
    import threading

    from repro.fleet.__main__ import canonical_report
    from repro.service.api import ServiceClient

    latencies_per_client = [[] for _ in range(clients)]
    answers_per_client = [dict() for _ in range(clients)]
    failures = []
    start_gate = threading.Barrier(clients + 1)

    def drive(client_index: int) -> None:
        client = ServiceClient(url, timeout=120.0)
        sink = latencies_per_client[client_index]
        answers = answers_per_client[client_index]
        try:
            start_gate.wait(timeout=30)
            for _ in range(rounds):
                for step in range(len(pairs)):
                    pair_index = (client_index + step) % len(pairs)
                    began = time.perf_counter()
                    response = client.explain(pairs[pair_index][4])
                    sink.append(time.perf_counter() - began)
                    answers[pair_index] = canonical_report(response)
        except Exception as exc:  # noqa: BLE001 - benchmark must report, not die
            failures.append(exc)

    threads = [
        threading.Thread(target=drive, args=(index,)) for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    start_gate.wait(timeout=30)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.perf_counter() - wall_start
    if failures:
        raise AssertionError(f"fleet load pass failed: {failures[0]}")
    latencies = [sample for sink in latencies_per_client for sample in sink]
    answers: dict[int, set] = {}
    for per_client in answers_per_client:
        for pair_index, canonical in per_client.items():
            answers.setdefault(pair_index, set()).add(canonical)
    return (len(latencies) / wall if wall else 0.0), latencies, answers


def run_fleet() -> dict:
    """The fleet section: equivalence, 1-vs-2-worker load, shared-tier reuse.

    Both fleets stay up through alternating best-of passes so OS noise hits
    them symmetrically, and every pass uses *fresh* database pairs so the
    measured requests do real pipeline work (a pass over nothing but warm
    cache hits would measure the HTTP stack, not the fleet).  The canonical
    form of every routed response is asserted equal to a direct single
    daemon's before any throughput is credited.
    """
    import os

    from repro.fleet.__main__ import _direct_baseline, canonical_report
    from repro.fleet.worker import http_json
    from repro.service.api import ServiceClient

    fleets = {count: _FleetUnderTest(count, []) for count in (1, 2)}
    try:
        best = {count: (0.0, []) for count in fleets}
        first_pass_pairs = None

        def measure_round(pass_index: int) -> None:
            # Fresh pairs per pass: every first touch is a cold pipeline run.
            pass_pairs = [
                fleet_pair(pass_index * FLEET_PAIRS + offset)
                for offset in range(FLEET_PAIRS)
            ]
            nonlocal first_pass_pairs
            if first_pass_pairs is None:
                first_pass_pairs = pass_pairs
            baseline = _direct_baseline(pass_pairs)
            for count, fleet in fleets.items():
                client = ServiceClient(fleet.url, timeout=120.0)
                for left_name, left, right_name, right, _ in pass_pairs:
                    client.register_database(left_name, left)
                    client.register_database(right_name, right)
                throughput, latencies, answers = _fleet_load_pass(
                    fleet.url, pass_pairs, FLEET_CLIENTS, FLEET_ROUNDS
                )
                for pair_index, canonicals in answers.items():
                    if canonicals != {baseline[pair_index]}:
                        raise AssertionError(
                            f"{count}-worker fleet: pair {pair_index} of pass "
                            f"{pass_index} diverged from the direct daemon"
                        )
                if throughput > best[count][0]:
                    best[count] = (throughput, latencies)

        passes_run = 0
        for _ in range(FLEET_PASSES):
            measure_round(passes_run)
            passes_run += 1
        cores = os.cpu_count() or 1
        floor = FLEET_MIN_SPEEDUP if cores >= FLEET_MULTICORE_THRESHOLD else 1.0
        for _ in range(FLEET_EXTRA_PASSES):
            if best[2][0] >= floor * best[1][0]:
                break
            measure_round(passes_run)
            passes_run += 1
        speedup = best[2][0] / best[1][0] if best[1][0] else 0.0

        # The shared tier across workers: a late joiner on the populated
        # spill must serve warm disk hits instead of recomputing.
        first_baseline = _direct_baseline(first_pass_pairs[:1])
        newcomer = fleets[2].pool.spawn(1)[0]
        fleets[2].router._admit(newcomer)
        status, body = http_json(
            "POST", f"{newcomer.url}/explain", first_pass_pairs[0][4], timeout=120.0
        )
        if status != 200 or canonical_report(body) != first_baseline[0]:
            raise AssertionError(f"newcomer answer diverged (status {status})")
        _, worker_stats = http_json("GET", f"{newcomer.url}/stats", timeout=30.0)
        cross_worker_hits = worker_stats["service"]["caches"]["report"]["spill_loads"]
        if cross_worker_hits < 1:
            raise AssertionError(
                "late-joining worker recomputed instead of reading the shared tier"
            )

        router_health = ServiceClient(fleets[2].url, timeout=30.0).health()
        shared_tier = router_health["shared_cache"]

        if speedup < floor:
            raise AssertionError(
                f"2-worker fleet only {speedup:.2f}x single-worker throughput "
                f"(floor {floor}x on {cores} core(s))"
            )

        def _side(count: int) -> dict:
            throughput, latencies = best[count]
            return {
                "workers": count,
                "requests": len(latencies),
                "throughput_rps": round(throughput, 2),
                "p50_seconds": round(_percentile(latencies, 0.50), 6),
                "p99_seconds": round(_percentile(latencies, 0.99), 6),
            }

        return {
            "pairs_per_pass": FLEET_PAIRS,
            "concurrent_clients": FLEET_CLIENTS,
            "rounds_per_client": FLEET_ROUNDS,
            "passes_run": passes_run,
            "cores": cores,
            "reports_byte_identical_to_direct": True,
            "single_worker": _side(1),
            "multi_worker": _side(2),
            "throughput_speedup": round(speedup, 3),
            "speedup_floor": floor,
            "cross_worker_warm_hits": cross_worker_hits,
            "shared_cache_tier": shared_tier,
        }
    finally:
        for fleet in fleets.values():
            fleet.close()


def main() -> dict:
    pair, requests = build_workload()

    direct_seconds, direct_reports = run_direct(pair, requests)

    service = ExplainService()
    service.register_database(pair.db_left, "left")
    service.register_database(pair.db_right, "right")
    cold_seconds, cold_reports = run_served(service, requests)
    cold_stats = service.stats()
    warm_seconds, warm_reports = run_served(service, requests)
    warm_stats = service.stats()

    for index, direct_report in enumerate(direct_reports):
        if not _reports_equal(direct_report, cold_reports[index]):
            raise AssertionError(f"request {index}: cold service report diverges from direct")
        if not _reports_equal(direct_report, warm_reports[index]):
            raise AssertionError(f"request {index}: warm service report diverges from direct")

    fast_median, guarded_median = measure_reliability_overhead(service, requests)
    overhead = (guarded_median - fast_median) / fast_median if fast_median else 0.0
    degraded = run_degraded(pair, requests, direct_reports)

    warm_speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    results = {
        "workload": {
            "dataset": pair.name,
            "requests_per_pass": len(requests),
            "distinct_reports": len({id(r) for r in warm_reports}),
        },
        "direct_seconds": round(direct_seconds, 6),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "cold_vs_direct_speedup": round(direct_seconds / cold_seconds, 2) if cold_seconds else None,
        "warm_vs_cold_speedup": round(warm_speedup, 2),
        "cache_stats_after_cold": cold_stats["caches"],
        "cache_stats_after_warm": warm_stats["caches"],
        "reports_equivalent": True,
        "reliability": {
            "fast_path_median_seconds": round(fast_median, 6),
            "deadline_checked_median_seconds": round(guarded_median, 6),
            "fault_free_overhead": round(overhead, 4),
            "max_fault_free_overhead": MAX_RELIABILITY_OVERHEAD,
            "overhead_epsilon_seconds": OVERHEAD_EPSILON_SECONDS,
            "degraded_mode": degraded,
        },
    }

    print(
        f"[service] {len(requests)} requests: direct {direct_seconds:.4f}s, "
        f"cold service {cold_seconds:.4f}s "
        f"({results['cold_vs_direct_speedup']}x vs direct), "
        f"warm service {warm_seconds:.4f}s ({results['warm_vs_cold_speedup']}x vs cold)"
    )
    report_stats = warm_stats["caches"]["report"]
    print(
        f"[service] report cache: {report_stats['hits']} hits / "
        f"{report_stats['misses']} misses; "
        f"candidates cache: {warm_stats['caches']['candidates']['hits']} hits"
    )

    print(
        f"[service] reliability: fault-free overhead "
        f"{overhead * 100:.2f}% (fast {fast_median * 1e3:.3f}ms vs guarded "
        f"{guarded_median * 1e3:.3f}ms); degraded mode "
        f"{degraded['correct_reports']}/{degraded['requests']} correct under "
        f"{degraded['injected_faults']} injected spill faults "
        f"(p50 {degraded['faulted_p50_seconds'] * 1e3:.3f}ms, "
        f"p99 {degraded['faulted_p99_seconds'] * 1e3:.3f}ms)"
    )

    if warm_speedup < MIN_WARM_SPEEDUP:
        raise AssertionError(
            f"warm pass only {warm_speedup:.2f}x faster than cold "
            f"(acceptance floor is {MIN_WARM_SPEEDUP}x)"
        )
    if guarded_median > fast_median * (1 + MAX_RELIABILITY_OVERHEAD) + OVERHEAD_EPSILON_SECONDS:
        raise AssertionError(
            f"fault-free reliability overhead {overhead * 100:.2f}% exceeds "
            f"{MAX_RELIABILITY_OVERHEAD * 100:.0f}% "
            f"({fast_median * 1e3:.3f}ms -> {guarded_median * 1e3:.3f}ms)"
        )

    fleet = run_fleet()
    results["fleet"] = fleet
    print(
        f"[fleet] {fleet['single_worker']['requests']} requests x "
        f"{fleet['concurrent_clients']} clients: 1 worker "
        f"{fleet['single_worker']['throughput_rps']} rps "
        f"(p99 {fleet['single_worker']['p99_seconds'] * 1e3:.1f}ms), 2 workers "
        f"{fleet['multi_worker']['throughput_rps']} rps "
        f"(p99 {fleet['multi_worker']['p99_seconds'] * 1e3:.1f}ms) -> "
        f"{fleet['throughput_speedup']}x on {fleet['cores']} core(s) "
        f"(floor {fleet['speedup_floor']}x); "
        f"{fleet['cross_worker_warm_hits']} cross-worker warm hit(s)"
    )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()

"""Figure 7: accuracy and efficiency on the IMDb workload.

Runs every query template (one instantiation each, at laptop scale), averages
explanation and evidence accuracy per method (Figures 7a and 7b), and reports
execution time against the number of provenance tuples (Figure 7c), including
Explain3D without the smart-partitioning optimization (Exp3D-NoOpt).

Expected shape: Explain3D reaches (near-)perfect accuracy on the IMDb views --
the initial mapping is much cleaner than on the Academic data -- while the
record-linkage baselines lose recall on instantiations whose titles/names were
corrupted, and FORMALEXP remains far behind.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import emit

from repro.baselines import all_methods
from repro.evaluation import (
    average_evaluations,
    format_accuracy_table,
    format_table,
    run_methods,
)


def test_figure7_imdb_accuracy_and_time(benchmark, imdb_workload, imdb_instantiations):
    methods = all_methods(include_unoptimized=True, batch_size=200)
    per_method = defaultdict(list)
    time_rows = []

    def run():
        per_method.clear()
        time_rows.clear()
        for template, param in imdb_instantiations:
            pair = imdb_workload.pair(template, param)
            problem, gold = pair.build_problem()
            if not len(problem.canonical_left) or not len(problem.canonical_right):
                continue
            result = run_methods(methods, problem, gold, name=f"{template}({param})")
            for evaluation in result.evaluations:
                per_method[evaluation.method].append(evaluation)
            tuples = len(problem.canonical_left) + len(problem.canonical_right)
            times = {e.method: e.seconds for e in result.evaluations}
            time_rows.append(
                [f"{template}({param})", tuples, len(problem.mapping)]
                + [f"{times[m.name]:.3f}" for m in methods]
            )
        return per_method

    benchmark.pedantic(run, rounds=1, iterations=1)

    averages = [average_evaluations(evaluations) for evaluations in per_method.values()]
    text = "\n\n".join(
        [
            format_accuracy_table(averages, kind="explanation",
                                  title="Figure 7a: average explanation accuracy (IMDb)"),
            format_accuracy_table(averages, kind="evidence",
                                  title="Figure 7b: average evidence accuracy (IMDb)"),
            format_table(
                ["instantiation", "#tuples", "|Mtuple|"] + [m.name for m in methods],
                time_rows,
                title="Figure 7c: execution time (seconds) per instantiation",
            ),
        ]
    )
    emit("figure7_imdb", text)

    by_method = {evaluation.method: evaluation for evaluation in averages}
    exp3d = by_method["Exp3D"]
    noopt = by_method["Exp3D-NoOpt"]
    formalexp = next(v for k, v in by_method.items() if k.startswith("FormalExp"))

    # Shape assertions mirroring Figures 7a/7b.
    assert exp3d.explanation.f_measure > 0.85
    assert exp3d.evidence.f_measure > 0.9
    assert exp3d.explanation.f_measure > formalexp.explanation.f_measure
    # The optimization does not cost accuracy.
    assert abs(exp3d.explanation.f_measure - noopt.explanation.f_measure) < 0.05
    for evaluation in averages:
        if evaluation.method not in ("Exp3D", "Exp3D-NoOpt"):
            assert evaluation.explanation.f_measure <= exp3d.explanation.f_measure + 1e-9

"""Figure 6: accuracy and efficiency on the Academic datasets.

Reproduces all six panels:

* 6a/6d -- explanation accuracy (precision/recall/F-measure) for NCES vs.
  UMass and NCES vs. OSU, for Explain3D and the five competitors;
* 6b/6e -- evidence accuracy for the same settings;
* 6c/6f -- execution time per method.

The expected *shape* (the paper's absolute numbers come from the real scraped
datasets): Explain3D attains the best F-measure on both explanations and
evidence; THRESHOLD and RSWOOSH have high evidence precision but low recall;
EXACTCOVER and FORMALEXP trail far behind; all methods run in under a second
on the Academic scale.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.baselines import all_methods
from repro.evaluation import format_accuracy_table, format_timing_table, run_methods


@pytest.mark.parametrize("dataset", ["umass_vs_nces", "osu_vs_nces"])
def test_figure6_accuracy_and_time(benchmark, academic_problems, dataset):
    _pair, problem, gold = academic_problems[dataset]
    methods = all_methods()

    result_holder = {}

    def run():
        result_holder["result"] = run_methods(methods, problem, gold, name=dataset)
        return result_holder["result"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = result_holder["result"]

    label = "6a-6c (NCES vs UMass)" if dataset == "umass_vs_nces" else "6d-6f (NCES vs OSU)"
    text = "\n\n".join(
        [
            format_accuracy_table(result.evaluations, kind="explanation",
                                  title=f"Figure {label}: explanation accuracy"),
            format_accuracy_table(result.evaluations, kind="evidence",
                                  title=f"Figure {label}: evidence accuracy"),
            format_timing_table(result.evaluations, title=f"Figure {label}: execution time"),
        ]
    )
    emit(f"figure6_{dataset}", text)

    by_method = result.by_method()
    exp3d = by_method["Exp3D"]
    threshold = by_method["Threshold-0.9"]
    rswoosh = next(v for k, v in by_method.items() if k.startswith("Rswoosh"))
    formalexp = next(v for k, v in by_method.items() if k.startswith("FormalExp"))
    exactcover = by_method["ExactCover"]

    # Shape assertions mirroring the paper's findings.
    assert exp3d.evidence.f_measure >= threshold.evidence.f_measure
    assert exp3d.evidence.f_measure >= rswoosh.evidence.f_measure
    assert exp3d.explanation.f_measure >= threshold.explanation.f_measure
    assert exp3d.explanation.f_measure > formalexp.explanation.f_measure
    assert exp3d.explanation.f_measure > exactcover.explanation.f_measure
    # Threshold-style refinement: high evidence precision, low recall.
    assert threshold.evidence.precision > 0.9
    assert threshold.evidence.recall < exp3d.evidence.recall
    # FormalExp produces no evidence mapping at all.
    assert formalexp.evidence.f_measure == 0.0

"""Figure 4: dataset statistics.

Regenerates the statistics table of Figure 4 -- original data size N, the
provenance relation sizes |P|, canonical relation sizes |T|, the initial tuple
mapping size |M_tuple|, the optimal evidence mapping size |M*_tuple| and the
number of explanations |E| (before and after Stage 3 summarization) -- for the
Academic dataset pairs and the IMDb query templates.
"""

from __future__ import annotations

from conftest import emit

from repro.core.summarize import PatternSummarizer
from repro.baselines import Explain3DMethod
from repro.evaluation.reporting import format_table


def _stats_row(name, db_left, db_right, problem, gold, explanations, summary_size):
    n_left = sum(len(rel) for rel in db_left.relations().values())
    n_right = sum(len(rel) for rel in db_right.relations().values())
    return [
        name,
        f"{n_left}/{n_right}",
        f"{len(problem.provenance_left)}/{len(problem.provenance_right)}",
        f"{len(problem.canonical_left)}/{len(problem.canonical_right)}",
        len(problem.mapping),
        len(explanations.evidence),
        explanations.size,
        summary_size,
        gold.num_explanations,
    ]


HEADERS = ["dataset", "N", "|P|", "|T|", "|Mtuple|", "|M*tuple|", "|E|", "|E_S|", "|E| gold"]


def test_figure4_academic_statistics(benchmark, academic_problems):
    """Figure 4 (top): Academic dataset statistics."""
    rows = []

    def build():
        rows.clear()
        for name, (pair, problem, gold) in academic_problems.items():
            explanations = Explain3DMethod().explain(problem)
            summary = PatternSummarizer().summarize(
                explanations, problem.canonical_left, problem.canonical_right
            )
            rows.append(
                _stats_row(name, pair.db_left, pair.db_right, problem, gold, explanations, summary.size)
            )
        return rows

    benchmark.pedantic(build, rounds=1, iterations=1)
    emit("figure4_academic_statistics", format_table(HEADERS, rows, title="Figure 4 (Academic)"))


def test_figure4_imdb_statistics(benchmark, imdb_workload, imdb_instantiations):
    """Figure 4 (bottom): IMDb per-template statistics (one instantiation each)."""
    rows = []

    def build():
        rows.clear()
        for template, param in imdb_instantiations:
            pair = imdb_workload.pair(template, param)
            problem, gold = pair.build_problem()
            if not len(problem.canonical_left) or not len(problem.canonical_right):
                continue
            explanations = Explain3DMethod().explain(problem)
            summary = PatternSummarizer().summarize(
                explanations, problem.canonical_left, problem.canonical_right
            )
            rows.append(
                _stats_row(
                    f"{template}({param})", pair.db_left, pair.db_right,
                    problem, gold, explanations, summary.size,
                )
            )
        return rows

    benchmark.pedantic(build, rounds=1, iterations=1)
    emit("figure4_imdb_statistics", format_table(HEADERS, rows, title="Figure 4 (IMDb)"))

"""Figure 8: smart-partitioning performance on synthetic data (Section 5.3).

Three sweeps over the synthetic generator, comparing the unoptimized solver
(NOOPT: one MILP) with the smart-partitioning optimizer at two batch sizes:

* 8a -- solve time vs. the number of tuples ``n`` (d = 0.2, v = 1K);
* 8b -- solve time vs. the difference ratio ``d`` (n = 400, v = 1K);
* 8c -- solve time vs. the vocabulary size ``v`` (n = 400, d = 0.2).

Scaled to laptop sizes (the paper sweeps n up to 100K on a server with CPLEX);
the qualitative shape is preserved: NOOPT grows super-linearly with n and with
match-graph density (small vocabularies), while batched solving stays flat and
loses no accuracy.  The paper's BATCH-100/BATCH-1000 correspond to the batch
sizes below.
"""

from __future__ import annotations

import time

import pytest
from conftest import emit

from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.evaluation import evaluate_explanations, format_table

BATCHES = (
    ("NoOpt", SolveConfig(partitioning="none")),
    ("Batch-100", SolveConfig(partitioning="smart", batch_size=100)),
    ("Batch-300", SolveConfig(partitioning="smart", batch_size=300)),
)


def _solve_times(config: SyntheticConfig) -> tuple[list, dict]:
    pair = generate_synthetic_pair(config)
    problem, gold = pair.build_problem()
    row = [len(problem.mapping)]
    accuracies = {}
    for label, solve_config in BATCHES:
        solver = PartitionedSolver(problem, solve_config)
        start = time.perf_counter()
        explanations = solver.solve()
        elapsed = time.perf_counter() - start
        accuracy = evaluate_explanations(explanations, gold, problem).f_measure
        accuracies[label] = accuracy
        row.append(f"{elapsed:.2f}")
    return row, accuracies


HEADERS = ["parameter", "|Mtuple|"] + [label for label, _ in BATCHES]


def test_figure8a_solve_time_vs_num_tuples(benchmark):
    rows = []
    accuracy_floor = []

    def run():
        rows.clear()
        accuracy_floor.clear()
        for n in (100, 200, 400):
            row, accuracies = _solve_times(
                SyntheticConfig(num_tuples=n, difference_ratio=0.2, vocabulary_size=1000)
            )
            rows.append([f"n={n}"] + row)
            accuracy_floor.append(min(accuracies.values()))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("figure8a_solve_time_vs_n",
         format_table(HEADERS, rows, title="Figure 8a: solve time (s) vs number of tuples"))
    # Near-perfect accuracy for all three configurations (Section 5.3).
    assert min(accuracy_floor) > 0.9


def test_figure8b_solve_time_vs_difference_ratio(benchmark):
    rows = []

    def run():
        rows.clear()
        for d in (0.1, 0.2, 0.3, 0.4, 0.5):
            row, _ = _solve_times(
                SyntheticConfig(num_tuples=400, difference_ratio=d, vocabulary_size=1000)
            )
            rows.append([f"d={d:g}"] + row)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("figure8b_solve_time_vs_d",
         format_table(HEADERS, rows, title="Figure 8b: solve time (s) vs difference ratio"))


def test_figure8c_solve_time_vs_vocabulary(benchmark):
    """Smaller vocabularies make the match graph denser and the MILPs harder.

    The sweep uses n = 300 (rather than the paper's 1K) because the densest
    setting drives the unoptimized solver's MILP to tens of thousands of
    binaries, which is where the batched variants pull ahead.
    """
    rows = []

    def run():
        rows.clear()
        for v in (300, 1000, 3000):
            row, _ = _solve_times(
                SyntheticConfig(num_tuples=300, difference_ratio=0.2, vocabulary_size=v)
            )
            rows.append([f"v={v}"] + row)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit("figure8c_solve_time_vs_v",
         format_table(HEADERS, rows, title="Figure 8c: solve time (s) vs vocabulary size"))


def test_figure8_accuracy_preserved_by_batching(benchmark):
    """Section 5.3: NOOPT and the batched variants all reach near-perfect accuracy."""
    config = SyntheticConfig(num_tuples=300, difference_ratio=0.2, vocabulary_size=1000)
    pair = generate_synthetic_pair(config)
    problem, gold = pair.build_problem()

    def run():
        scores = {}
        for label, solve_config in BATCHES:
            explanations = PartitionedSolver(problem, solve_config).solve()
            scores[label] = evaluate_explanations(explanations, gold, problem).f_measure
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "figure8_accuracy",
        format_table(["configuration", "explanation F-measure"],
                     [[label, f"{score:.3f}"] for label, score in scores.items()],
                     title="Figure 8 (text): accuracy of NoOpt vs batched solving"),
    )
    assert all(score > 0.9 for score in scores.values())
    assert abs(scores["NoOpt"] - scores["Batch-100"]) < 0.05

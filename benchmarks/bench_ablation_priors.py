"""Ablation: sensitivity to the priors alpha and beta (Section 3.1).

The paper requires alpha, beta in (0.5, 1] but does not report the values it
uses.  This ablation sweeps both priors on the UMass-style academic pair and
reports explanation/evidence accuracy for Explain3D and GREEDY, showing (a)
that Explain3D's optimum always dominates GREEDY's objective, and (b) how the
accuracy varies across the admissible prior range.
"""

from __future__ import annotations

from conftest import emit

from repro.baselines import Explain3DMethod, GreedyBaseline
from repro.core.scoring import Priors
from repro.datasets.academic import generate_academic_pair, umass_config
from repro.evaluation import format_table, run_methods

PRIOR_GRID = (
    Priors(0.7, 0.7),
    Priors(0.8, 0.75),
    Priors(0.9, 0.9),
    Priors(0.95, 0.6),
    Priors(0.99, 0.8),
)


def test_ablation_priors(benchmark):
    pair = generate_academic_pair(umass_config())
    rows = []

    def run():
        rows.clear()
        for priors in PRIOR_GRID:
            problem, gold = pair.build_problem(priors=priors)
            result = run_methods([Explain3DMethod(), GreedyBaseline()], problem, gold)
            exp3d = result.method("Exp3D")
            greedy = result.method("Greedy")
            rows.append(
                [
                    f"alpha={priors.alpha:g}, beta={priors.beta:g}",
                    f"{exp3d.explanation.f_measure:.3f}",
                    f"{exp3d.evidence.f_measure:.3f}",
                    f"{greedy.explanation.f_measure:.3f}",
                    f"{greedy.evidence.f_measure:.3f}",
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_priors",
        format_table(
            ["priors", "Exp3D expl F", "Exp3D evid F", "Greedy expl F", "Greedy evid F"],
            rows,
            title="Ablation: prior sensitivity on the UMass-style academic pair",
        ),
    )
    assert len(rows) == len(PRIOR_GRID)

"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures and
both prints it (visible with ``pytest -s`` / on benchmark summaries) and writes
it to ``benchmarks/results/<name>.txt`` so the output survives pytest's output
capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets.academic import generate_academic_pair, osu_config, umass_config
from repro.datasets.imdb import IMDbConfig, generate_imdb_workload

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a report table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


@pytest.fixture(scope="session")
def academic_problems():
    """Both academic pairs (UMass vs NCES, OSU vs NCES) with their gold standards."""
    problems = {}
    for config in (umass_config(), osu_config()):
        pair = generate_academic_pair(config)
        problems[config.name] = (pair, *pair.build_problem())
    return problems


@pytest.fixture(scope="session")
def imdb_workload():
    """A laptop-scale IMDb workload shared by the Figure 4 and Figure 7 benchmarks."""
    return generate_imdb_workload(IMDbConfig(num_movies=400, num_people=400, seed=17))


@pytest.fixture(scope="session")
def imdb_instantiations(imdb_workload):
    """A deterministic set of template instantiations (template, parameter)."""
    years = imdb_workload.years_with_movies(minimum=8)
    pairs = []
    for index, template in enumerate(imdb_workload.TEMPLATES):
        if template == "Q10":
            pairs.append((template, "Horror"))
        elif template == "Q2":
            pairs.append((template, 1955 + index))
        else:
            pairs.append((template, years[index % len(years)]))
    return pairs

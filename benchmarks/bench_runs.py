"""Run-diff benchmark: aligner throughput and warm-vs-cold service explains.

Two measurements over the ``repro.runs`` workload:

* **aligner throughput** -- align two 50k-row runs (a perturbed copy of a
  synthetic run: value mismatches, drops on both sides, duplicate keys) with
  the production hash-indexed aligner and report rows/second.  The brute-force
  O(n*m) reference aligner is the correctness oracle; running it at 50k rows
  is infeasible by design, so equivalence is asserted on a deterministic
  slice of the same workload instead.

* **warm vs cold service explain** -- the variants scenario through a live
  daemon.  The first ``{"runs": ...}`` request pays registration plus a cold
  pipeline run; the second sends the byte-identical spec, so the
  content-addressed caches must serve it as a report-cache hit at least
  ``MIN_WARM_SPEEDUP`` x faster.  Byte-identity is asserted the whole way:
  direct pipeline == cold daemon == warm daemon == fleet-routed (two
  ``StaticWorker`` pods behind a ``FleetRouter``).

Results go to ``BENCH_runs.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_runs.py
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.datasets.variants import VariantsConfig, generate_variant_runs
from repro.fleet.__main__ import canonical_report
from repro.fleet.router import FleetRouter, serve_router_in_background
from repro.fleet.worker import StaticWorker
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema
from repro.runs import align_runs, align_runs_reference, build_run_problem
from repro.service import ExplainService, ServiceClient, serve_in_background

RESULT_PATH = ROOT / "BENCH_runs.json"
MIN_WARM_SPEEDUP = 3.0   # gated: warm (cached) runs explain vs the cold one

ALIGN_ROWS = 50_000      # production-aligner workload size
ALIGN_PASSES = 3         # best-of passes for the throughput number
ORACLE_ROWS = 1_500      # slice re-checked against the brute-force reference
SEED = 7

BENCH_SCHEMA = Schema(
    [
        Attribute("id", DataType.INTEGER),
        Attribute("shard", DataType.STRING),
        Attribute("value", DataType.FLOAT),
        Attribute("ok", DataType.BOOLEAN),
    ]
)


def build_align_workload(rows: int, rng: random.Random) -> tuple[Relation, Relation]:
    """A run and a perturbed re-run: ~1% mismatches, drops, duplicate keys."""
    base = [
        {
            "id": index,
            "shard": f"shard-{index % 16}",
            "value": round(rng.uniform(0, 1000), 3),
            "ok": index % 7 != 0,
        }
        for index in range(rows)
    ]
    left = [dict(record) for record in base if rng.random() > 0.005]
    right = []
    for record in base:
        if rng.random() <= 0.005:
            continue
        mutated = dict(record)
        if rng.random() < 0.01:
            mutated["value"] = mutated["value"] + 1.0
        right.append(mutated)
    for source, side in ((left, left), (right, right)):
        for _ in range(rows // 10_000):
            side.append(dict(rng.choice(source)))
    rng.shuffle(right)
    return (
        Relation.from_records(left, BENCH_SCHEMA, name="run_a"),
        Relation.from_records(right, BENCH_SCHEMA, name="run_b"),
    )


def run_aligner_bench() -> dict:
    rng = random.Random(SEED)
    left, right = build_align_workload(ALIGN_ROWS, rng)

    best_seconds, counts = float("inf"), None
    for _ in range(ALIGN_PASSES):
        start = time.perf_counter()
        alignment = align_runs(left, right, ("id",))
        best_seconds = min(best_seconds, time.perf_counter() - start)
        if counts is not None and alignment.counts() != counts:
            raise AssertionError("aligner is not deterministic across passes")
        counts = alignment.counts()
    if not alignment.disagreements:
        raise AssertionError("bench workload produced no disagreements to classify")

    # Oracle slice: the brute-force reference is O(n*m), so the equivalence
    # check runs on a deterministic prefix of the same workload.
    slice_left, slice_right = build_align_workload(ORACLE_ROWS, random.Random(SEED))
    fast = align_runs(slice_left, slice_right, ("id",))
    reference = align_runs_reference(slice_left, slice_right, ("id",))
    if fast.canonical() != reference.canonical():
        raise AssertionError("production aligner diverged from the brute-force oracle")

    total_rows = len(left.rows) + len(right.rows)
    return {
        "rows_per_side": ALIGN_ROWS,
        "total_rows": total_rows,
        "passes": ALIGN_PASSES,
        "align_seconds": round(best_seconds, 6),
        "rows_per_second": round(total_rows / best_seconds),
        "disagreements": counts,
        "oracle_slice_rows": ORACLE_ROWS,
        "oracle_identical": True,
    }


def run_service_bench() -> dict:
    scenario = generate_variant_runs(VariantsConfig(num_rows=60, stale_stride=11))
    problem = build_run_problem(
        scenario.relation("single_thread"),
        scenario.relation("shared_state"),
        key=scenario.key,
    )
    direct = canonical_report(problem.explain().to_dict())
    runs_payload = {
        "runs": {
            "left": {"name": "single_thread", "records": scenario.runs["single_thread"]},
            "right": {"name": "shared_state", "records": scenario.runs["shared_state"]},
            "key": "id",
        }
    }

    server, _ = serve_in_background(ExplainService())
    servers = [server]
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        start = time.perf_counter()
        cold = client.explain(runs_payload)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = client.explain(runs_payload)
        warm_seconds = time.perf_counter() - start

        if canonical_report(cold) != direct:
            raise AssertionError("cold daemon explain diverged from the direct pipeline")
        if canonical_report(warm) != direct:
            raise AssertionError("warm daemon explain diverged from the direct pipeline")
        if not warm["service"]["cached_report"]:
            raise AssertionError("second identical runs request missed the report cache")

        # The same spec through a two-pod fleet, byte-identical again.
        workers = []
        for index in range(2):
            worker_server, _ = serve_in_background(ExplainService())
            servers.append(worker_server)
            workers.append(
                StaticWorker(
                    f"pod-{index}",
                    f"http://127.0.0.1:{worker_server.server_address[1]}",
                )
            )
        router_server, _ = serve_router_in_background(FleetRouter(workers))
        servers.append(router_server)
        router_client = ServiceClient(
            f"http://127.0.0.1:{router_server.server_address[1]}"
        )
        routed = router_client.explain(runs_payload)
        if canonical_report(routed) != direct:
            raise AssertionError("fleet-routed explain diverged from the direct pipeline")
    finally:
        for running in servers:
            running.shutdown()

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    return {
        "scenario_rows": 60,
        "compare_column": problem.compare,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "warm_speedup": round(speedup, 2),
        "warm_cached_report": True,
        "byte_identical": ["direct", "daemon_cold", "daemon_warm", "fleet_routed"],
    }


def main() -> dict:
    aligner = run_aligner_bench()
    service = run_service_bench()

    results = {
        "aligner": aligner,
        "service": service,
        "min_warm_speedup": MIN_WARM_SPEEDUP,
    }

    print(
        f"[runs] aligner: {aligner['total_rows']} rows in "
        f"{aligner['align_seconds']:.3f}s -> {aligner['rows_per_second']:,} rows/s "
        f"({aligner['disagreements']}), oracle-identical on a "
        f"{ORACLE_ROWS}-row slice"
    )
    print(
        f"[runs] service: cold {service['cold_seconds']:.4f}s vs warm "
        f"{service['warm_seconds']:.4f}s -> {service['warm_speedup']}x "
        f"(report-cache hit), byte-identical across "
        f"{', '.join(service['byte_identical'])}"
    )

    if service["warm_speedup"] < MIN_WARM_SPEEDUP:
        raise AssertionError(
            f"warm runs explain only {service['warm_speedup']:.2f}x faster than "
            f"cold (acceptance floor is {MIN_WARM_SPEEDUP}x)"
        )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()

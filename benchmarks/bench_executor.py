"""Machine-readable executor benchmark: naive interpreter vs query planner.

Times query execution on workloads shaped like the ones Stage 1 pays for on
every explain request:

* **synthetic_join** -- an equi-join written as a theta ``condition`` (the
  shape JSON/API clients and hand-built ASTs produce) with a selective filter
  above it.  The naive interpreter runs a nested loop over the cross product;
  the planner extracts the equality into a hash-join key and pushes the
  filter below the join.
* **synthetic_multikey** -- a two-key equi-join whose first key is nearly
  useless (4 distinct values).  The interpreter hashes on the first key only
  and filters the rest pair by pair; the planner hashes the composite key.
* **imdb_views** -- the IMDb view pairs of the paper's Section 5.1 templates,
  executed end to end (provenance-shaped trees: joins over Movie/MovieInfo).
* **columnar_*** -- batch-at-a-time workloads on a larger synthetic dataset
  (4000 orders x 800 customers) where the plan shape is identical on both
  paths and the delta is the executor core itself: the naive interpreter
  walks row dicts one at a time, the planner runs the columnar batch
  executor (vectorized filter masks, column-array hash joins, column-sliced
  aggregation).  ``MIN_COLUMNAR_SPEEDUP`` enforces >= 2x on the batch filter
  and batch join workloads.
* **stats_multijoin** -- a three-relation join chain written in a
  pessimal order (the many-to-many join first, the selective tiny dimension
  last).  The PR 4 planner executes the written order; after ``ANALYZE`` the
  cost-based planner reorders the chain (``MultiJoinExec``), joining the tiny
  dimension early.  ``MIN_STATS_NAIVE_SPEEDUP`` / ``MIN_STATS_REORDER_SPEEDUP``
  enforce that statistics never regress below the naive interpreter and beat
  the statistics-less planner by >= 1.5x on this workload.

Every timed pair of paths asserts **fingerprint equivalence** (schema, rows,
order, per-row lineage) between the naive and the planned result -- the
script fails loudly rather than report a speedup for a divergent answer.
``MIN_JOIN_SPEEDUP`` enforces the planner's headline win on the synthetic
join workload.  Results go to ``BENCH_executor.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_executor.py
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.plan import plan_query
from repro.relational.executor import Database, execute
from repro.relational.expressions import AttributeComparison, col
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Join,
    Query,
    Scan,
    Select,
    count_query,
    sum_query,
)

RESULT_PATH = ROOT / "BENCH_executor.json"
REPEATS = 3
MIN_JOIN_SPEEDUP = 2.0
MIN_STATS_NAIVE_SPEEDUP = 1.0
MIN_STATS_REORDER_SPEEDUP = 1.5
MIN_COLUMNAR_SPEEDUP = 2.0

REGIONS = ["north", "south", "east", "west"]


def _best_of(function, repeats=REPEATS):
    """Best wall-clock time of ``repeats`` runs, plus the (deterministic) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _synthetic_db(num_orders: int = 1200, num_customers: int = 300) -> Database:
    rng = random.Random(7)
    db = Database("bench")
    db.add_records(
        "Customers",
        [
            {
                "cust_id": index,
                "region": rng.choice(REGIONS),
                "segment": rng.choice(["retail", "b2b", "gov"]),
            }
            for index in range(num_customers)
        ],
    )
    db.add_records(
        "Orders",
        [
            {
                "order_id": index,
                "cust_id": rng.randrange(num_customers),
                "region": rng.choice(REGIONS),
                "amount": round(rng.uniform(5.0, 500.0), 2),
            }
            for index in range(num_orders)
        ],
    )
    return db


def _time_pair(name: str, query: Query, db: Database) -> dict:
    """Time naive vs planned execution of one query, asserting equivalence."""
    naive_seconds, naive_result = _best_of(lambda: execute(query, db, planner="naive"))
    planned_seconds, planned_result = _best_of(
        lambda: execute(query, db, planner="optimized")
    )
    if naive_result.fingerprint() != planned_result.fingerprint():
        raise AssertionError(
            f"{name}: planned execution diverges from the naive interpreter"
        )
    plan = plan_query(query, db)
    return {
        "workload": name,
        "query": query.name,
        "rows_out": len(planned_result),
        "operators": len(plan.operators),
        "rewrites": plan.rewrites.applied,
        "naive_seconds": round(naive_seconds, 6),
        "planned_seconds": round(planned_seconds, 6),
        "speedup": round(naive_seconds / planned_seconds, 2) if planned_seconds else None,
    }


def bench_synthetic_join() -> dict:
    """Theta-written equi-join + selective filter: nested loop vs hash join."""
    db = _synthetic_db()
    # The join key equality lives in the *condition* (as a declarative API
    # client would write it) and the filter sits above the join -- the naive
    # interpreter gets a filtered cross product, the planner a pushed-down
    # hash join.
    join = Join(
        Scan("Orders"),
        Scan("Customers"),
        condition=AttributeComparison("cust_id", "=", "cust_id_r"),
    )
    query = sum_query(
        "join_sum",
        Select(join, col("region_r") == "west"),
        "amount",
        description="revenue from customers in the west region",
    )
    return _time_pair("synthetic_join", query, db)


def bench_synthetic_multikey() -> dict:
    """Two-key join with a low-selectivity first key: composite hashing."""
    db = _synthetic_db()
    join = Join(
        Scan("Orders"),
        Scan("Customers"),
        on=(("region", "region"), ("cust_id", "cust_id")),
    )
    query = count_query("multikey_count", join, attribute="order_id")
    return _time_pair("synthetic_multikey", query, db)


def bench_columnar() -> list[dict]:
    """Batch executor vs row-at-a-time interpretation, same plan shape.

    These workloads are deliberately rewrite-light (filters already below
    joins, joins written as ``on=`` equi-keys) so the naive and planned trees
    do the same logical work and the measured speedup is the columnar batch
    core: vectorized predicate masks, column-array hash join build/probe,
    and column-sliced aggregation with late ``Row`` materialization.
    Fingerprint equality (rows, order, lineage) is asserted before timing.
    """
    db = _synthetic_db(4000, 800)
    filter_query = sum_query(
        "columnar_filter",
        Select(Scan("Orders"), (col("amount") > 250.0) & (col("region") == "west")),
        "amount",
        description="high-value western orders, vectorized mask workload",
    )
    join = Join(Scan("Orders"), Scan("Customers"), on=(("cust_id", "cust_id"),))
    join_query = sum_query(
        "columnar_join",
        Select(join, col("segment_r") == "b2b"),
        "amount",
        description="revenue from b2b customers, batch hash-join workload",
    )
    groupby_query = Query(
        "columnar_groupby",
        Aggregate(
            Scan("Orders"), AggregateFunction.SUM, "amount",
            group_by=("region",), alias="total",
        ),
    )
    return [
        _time_pair("columnar_filter", filter_query, db),
        _time_pair("columnar_join", join_query, db),
        _time_pair("columnar_groupby", groupby_query, db),
    ]


def bench_stats_multijoin() -> dict:
    """Stats-off vs stats-on planning of a pessimally written join chain."""
    rng = random.Random(11)
    db = Database("bench_stats")
    db.add_records(
        "Orders", [{"order_id": i, "cust_id": i % 30} for i in range(1500)]
    )
    db.add_records(
        "Payments",
        [{"cust_id": i % 30, "batch_id": i % 500} for i in range(1500)],
    )
    db.add_records(
        "Batches",
        [{"batch_id": rng.randrange(500), "carrier": f"c{i}"} for i in range(40)],
    )
    # Written order: the many-to-many Orders x Payments join first (~75k
    # intermediate rows), the 40-row Batches dimension last.  The cost-based
    # planner flips it.
    chain = Join(
        Join(Scan("Orders"), Scan("Payments"), on=(("cust_id", "cust_id"),)),
        Scan("Batches"),
        on=(("batch_id", "batch_id"),),
    )
    query = count_query(
        "stats_multijoin", chain, attribute="order_id",
        description="orders whose payment batch has a carrier",
    )
    naive_seconds, naive_result = _best_of(lambda: execute(query, db, planner="naive"))
    planned_seconds, planned_result = _best_of(
        lambda: execute(query, db, planner="optimized")
    )
    analyze_start = time.perf_counter()
    db.analyze()
    analyze_seconds = time.perf_counter() - analyze_start
    stats_seconds, stats_result = _best_of(
        lambda: execute(query, db, planner="optimized")
    )
    if (
        naive_result.fingerprint() != planned_result.fingerprint()
        or naive_result.fingerprint() != stats_result.fingerprint()
    ):
        raise AssertionError(
            "stats_multijoin: planned execution diverges from the naive interpreter"
        )
    plan = plan_query(query, db)
    multi = next(op for op in plan.operators if op.name == "MultiJoinExec")
    return {
        "workload": "stats_multijoin",
        "query": query.name,
        "rows_out": len(stats_result),
        "join_order": [multi.labels[index] for index in multi.order],
        "analyze_seconds": round(analyze_seconds, 6),
        "naive_seconds": round(naive_seconds, 6),
        "planned_seconds": round(planned_seconds, 6),
        "stats_seconds": round(stats_seconds, 6),
        "speedup_vs_naive": round(naive_seconds / stats_seconds, 2)
        if stats_seconds else None,
        "speedup_vs_planned": round(planned_seconds / stats_seconds, 2)
        if stats_seconds else None,
    }


def bench_imdb_views() -> list[dict]:
    """The paper's IMDb view templates, both sides, end to end."""
    from repro.datasets.imdb import generate_imdb_workload

    workload = generate_imdb_workload()
    year = workload.years_with_movies()[0]
    entries = []
    for template in ("Q3", "Q5"):
        pair = workload.pair(template, year)
        for query, db in (
            (pair.query_left, pair.db_left),
            (pair.query_right, pair.db_right),
        ):
            entries.append(_time_pair(f"imdb_{template}", query, db))
    return entries


def main() -> int:
    entries = [bench_synthetic_join(), bench_synthetic_multikey()]
    entries.extend(bench_imdb_views())
    stats_entry = bench_stats_multijoin()
    entries.append(stats_entry)
    columnar_entries = bench_columnar()
    entries.extend(columnar_entries)
    payload = {
        "benchmark": "executor",
        "repeats": REPEATS,
        "min_join_speedup": MIN_JOIN_SPEEDUP,
        "min_stats_naive_speedup": MIN_STATS_NAIVE_SPEEDUP,
        "min_stats_reorder_speedup": MIN_STATS_REORDER_SPEEDUP,
        "min_columnar_speedup": MIN_COLUMNAR_SPEEDUP,
        "entries": entries,
        "columnar": {
            "reference": "row-at-a-time naive interpreter",
            "batch": "columnar executor (vectorized masks, column-array joins)",
            "gated_workloads": ["columnar_filter", "columnar_join"],
            "entries": columnar_entries,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    for entry in entries:
        if entry["workload"] == "stats_multijoin":
            print(
                f"{entry['workload']:>20} ({entry['query']}): "
                f"naive {entry['naive_seconds']:.4f}s -> planned "
                f"{entry['planned_seconds']:.4f}s -> stats "
                f"{entry['stats_seconds']:.4f}s "
                f"({entry['speedup_vs_planned']}x vs planner, order "
                f"{entry['join_order']})"
            )
            continue
        print(
            f"{entry['workload']:>20} ({entry['query']}): "
            f"naive {entry['naive_seconds']:.4f}s -> planned "
            f"{entry['planned_seconds']:.4f}s ({entry['speedup']}x)"
        )
    print(f"results written to {RESULT_PATH}")
    failed = False
    join_entry = entries[0]
    if join_entry["speedup"] is not None and join_entry["speedup"] < MIN_JOIN_SPEEDUP:
        print(
            f"FAIL: synthetic join speedup {join_entry['speedup']}x is below the "
            f"required {MIN_JOIN_SPEEDUP}x",
            file=sys.stderr,
        )
        failed = True
    if (
        stats_entry["speedup_vs_naive"] is not None
        and stats_entry["speedup_vs_naive"] < MIN_STATS_NAIVE_SPEEDUP
    ):
        print(
            f"FAIL: stats multi-join is {stats_entry['speedup_vs_naive']}x vs the "
            f"naive interpreter, below the required {MIN_STATS_NAIVE_SPEEDUP}x",
            file=sys.stderr,
        )
        failed = True
    if (
        stats_entry["speedup_vs_planned"] is not None
        and stats_entry["speedup_vs_planned"] < MIN_STATS_REORDER_SPEEDUP
    ):
        print(
            f"FAIL: stats multi-join is {stats_entry['speedup_vs_planned']}x vs the "
            f"statistics-less planner, below the required "
            f"{MIN_STATS_REORDER_SPEEDUP}x",
            file=sys.stderr,
        )
        failed = True
    for entry in columnar_entries:
        if entry["workload"] not in ("columnar_filter", "columnar_join"):
            continue
        if entry["speedup"] is not None and entry["speedup"] < MIN_COLUMNAR_SPEEDUP:
            print(
                f"FAIL: {entry['workload']} speedup {entry['speedup']}x is below "
                f"the required {MIN_COLUMNAR_SPEEDUP}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

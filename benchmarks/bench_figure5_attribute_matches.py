"""Figure 5: attribute matches for the real-world datasets.

The paper declares the attribute matches as input (Figure 5).  This benchmark
reports both the declared matches of each generated dataset pair and the
matches recovered automatically by the instance-based schema matcher, checking
that the matcher finds the declared correspondence.
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.reporting import format_table
from repro.matching.schema_matcher import infer_attribute_matches


def test_figure5_attribute_matches(benchmark, academic_problems, imdb_workload):
    rows = []

    def build():
        rows.clear()
        for name, (pair, problem, _gold) in academic_problems.items():
            declared = "; ".join(str(match) for match in pair.attribute_matches)
            inferred = infer_attribute_matches(problem.provenance_left, problem.provenance_right)
            rows.append([name, declared, "; ".join(str(m) for m in inferred)])
        # One movie-centric and one person-centric IMDb template.
        for template, param in (("Q3", imdb_workload.years_with_movies(minimum=8)[0]), ("Q10", "Horror")):
            pair = imdb_workload.pair(template, param)
            problem, _ = pair.build_problem()
            declared = "; ".join(str(match) for match in pair.attribute_matches)
            inferred = infer_attribute_matches(problem.provenance_left, problem.provenance_right)
            rows.append([f"imdb {template}", declared, "; ".join(str(m) for m in inferred)])
        return rows

    benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "figure5_attribute_matches",
        format_table(["dataset pair", "declared M_attr", "schema-matcher output"], rows,
                     title="Figure 5: attribute matches"),
    )

    # The matcher must recover the declared academic correspondence.
    academic_rows = [row for row in rows if "nces" in row[0]]
    assert all("Major" in row[2] and "Program" in row[2] for row in academic_rows)

"""Live-update benchmark: incremental refresh vs. full recompute after a delta.

The scenario the live subsystem exists for: a practitioner keeps a warm
:class:`ExplainService` over a dataset pair while rows trickle in and out.
After a ~1% row-level delta, the question to answer again is the same, so the
two honest options are:

* **incremental** -- ``ingest`` the delta into the warm service (rolling
  fingerprints, incremental ANALYZE, delta-aware cache rewiring) and
  re-``explain``;
* **full recompute** -- rebuild the post-delta databases, register them with a
  fresh service, and run the pipeline cold.

Both paths must produce byte-identical canonical reports (asserted via the
fleet's ``canonical_report``); the incremental path must be at least
``MIN_INCREMENTAL_SPEEDUP`` x faster.  Two delta shapes are measured:

* an **out-of-provenance delete** (rows the query's WHERE clause excludes):
  every artifact is rewired to the new database fingerprint, nothing is
  evicted, and the refresh is a cached-report hit -- this is the gated case;
* an **in-provenance insert**: affected artifacts are evicted and recomputed,
  so the refresh does real pipeline work -- recorded, not gated, because it
  measures eviction correctness rather than reuse.

A third section micro-benchmarks ``Relation.fingerprint()``: the rolling
digest is memoized, so the steady-state call the cache layer makes on every
lookup must be orders of magnitude cheaper than rehashing the table.

Results go to ``BENCH_live.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_live.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro import Database, Scan, col, count_query, matching
from repro.fleet.__main__ import canonical_report
from repro.live import apply_changes
from repro.relational.relation import Relation
from repro.service import ExplainRequest, ExplainService

RESULT_PATH = ROOT / "BENCH_live.json"
MIN_INCREMENTAL_SPEEDUP = 3.0   # gated: out-of-provenance refresh vs cold rebuild
MIN_FINGERPRINT_SPEEDUP = 25.0  # memoized fingerprint() vs full-chain rehash

ROWS_PER_SIDE = 120             # distinct values -> a cold explain is real work
DELTA_ROWS = 2                  # ceil(1%) of ROWS_PER_SIDE rows per delta
RECOMPUTE_PASSES = 3            # best-of passes for the cold-rebuild side
MICRO_ROWS = 20_000             # fingerprint micro-bench table size
MICRO_CALLS = 10_000            # memoized calls timed per pass


def build_rows(rows: int = ROWS_PER_SIDE) -> tuple[list[dict], list[dict]]:
    """Left programs vs right majors; only Univ='A' rows are in Q2 provenance."""
    left = [
        {"Program": f"Prog {j}", "Degree": "B.S." if j % 2 else "B.A."}
        for j in range(rows)
    ]
    right = [
        {
            "Univ": "A" if j % 2 else "B",
            "Major": f"Prog {j}" if j % 5 else f"Major {j}",
        }
        for j in range(rows)
    ]
    return left, right


def build_service(left_rows: list[dict], right_rows: list[dict]) -> ExplainService:
    db_left = Database("bench_left")
    db_left.add_records("BL", left_rows)
    db_right = Database("bench_right")
    db_right.add_records("BR", right_rows)
    service = ExplainService()
    service.register_database(db_left, "bench_left")
    service.register_database(db_right, "bench_right")
    return service


def build_request() -> ExplainRequest:
    q1 = count_query("Q1", Scan("BL"), attribute="Program")
    q2 = count_query("Q2", Scan("BR"), predicate=(col("Univ") == "A"), attribute="Major")
    return ExplainRequest(
        query_left=q1,
        database_left="bench_left",
        query_right=q2,
        database_right="bench_right",
        attribute_matches=matching(("Program", "Major")),
    )


def canon(service: ExplainService, request: ExplainRequest):
    result = service.explain(request)
    return canonical_report(result.report.to_dict()), result


def apply_to_rows(rows: list[dict], relation: str, specs: list[dict]) -> list[dict]:
    """The raw-row oracle: what the relation holds after the delta."""
    out = list(rows)
    for spec in specs:
        if spec["op"] == "insert":
            out.append(dict(spec["record"]))
        elif spec["op"] == "delete":
            position = int(str(spec["row_id"]).rsplit(":", 1)[1])
            out[position] = None
        else:
            raise AssertionError(f"bench delta uses unsupported op {spec['op']!r}")
    return [row for row in out if row is not None]


def time_full_recompute(left_rows, right_rows, request, passes=RECOMPUTE_PASSES):
    """Best-of cold rebuilds: fresh service + registration + cold explain."""
    best_seconds, canonical = float("inf"), None
    for _ in range(passes):
        start = time.perf_counter()
        service = build_service(left_rows, right_rows)
        report, _ = canon(service, request)
        elapsed = time.perf_counter() - start
        if canonical is not None and report != canonical:
            raise AssertionError("cold rebuild is not deterministic across passes")
        canonical = report
        best_seconds = min(best_seconds, elapsed)
    return best_seconds, canonical


def run_delta_scenario(name, specs, database, relation, left_rows, right_rows):
    """One warm service + delta: incremental refresh vs best-of cold rebuild."""
    request = build_request()
    service = build_service(left_rows, right_rows)
    pre_report, _ = canon(service, request)

    start = time.perf_counter()
    summary = service.ingest(database, relation, specs)
    ingest_seconds = time.perf_counter() - start
    start = time.perf_counter()
    post_report, result = canon(service, request)
    refresh_seconds = time.perf_counter() - start
    incremental_seconds = ingest_seconds + refresh_seconds

    post_left = apply_to_rows(left_rows, "BL", specs) if relation == "BL" else left_rows
    post_right = apply_to_rows(right_rows, "BR", specs) if relation == "BR" else right_rows
    recompute_seconds, cold_report = time_full_recompute(post_left, post_right, request)

    if post_report != cold_report:
        raise AssertionError(f"{name}: incremental refresh diverged from a cold rebuild")
    speedup = recompute_seconds / incremental_seconds if incremental_seconds else float("inf")
    return {
        "delta": {
            "database": database,
            "relation": relation,
            "changes": summary["changes"],
            "stats_mode": summary["stats"],
        },
        "caches": summary["caches"],
        "cached_report_on_refresh": bool(result.cached_report),
        "report_changed": post_report != pre_report,
        "incremental_seconds": round(incremental_seconds, 6),
        "ingest_seconds": round(ingest_seconds, 6),
        "refresh_seconds": round(refresh_seconds, 6),
        "full_recompute_seconds": round(recompute_seconds, 6),
        "speedup": round(speedup, 2),
        "reports_identical_to_cold_rebuild": True,
    }


def run_fingerprint_microbench() -> dict:
    """Memoized ``fingerprint()`` vs a full-chain rehash of the same table."""
    rows = [
        {"id": index, "match_attr": f"word {index % 997}", "val": index % 10}
        for index in range(MICRO_ROWS)
    ]
    relation = Relation.from_records(rows, name="Micro")

    rehash_seconds = float("inf")
    for _ in range(3):
        relation._reset_fingerprint()
        start = time.perf_counter()
        relation.fingerprint()
        rehash_seconds = min(rehash_seconds, time.perf_counter() - start)

    relation.fingerprint()  # prime the memo
    start = time.perf_counter()
    for _ in range(MICRO_CALLS):
        relation.fingerprint()
    per_call_seconds = (time.perf_counter() - start) / MICRO_CALLS

    speedup = rehash_seconds / per_call_seconds if per_call_seconds else float("inf")
    return {
        "rows": MICRO_ROWS,
        "memoized_calls": MICRO_CALLS,
        "full_rehash_seconds": round(rehash_seconds, 6),
        "memoized_call_seconds": round(per_call_seconds, 9),
        "speedup": round(speedup, 1),
    }


def main() -> dict:
    left_rows, right_rows = build_rows()

    # Sanity: the change-spec batches the two scenarios ingest.
    unaffected_specs = [
        {"op": "delete", "row_id": f"BR:{j}"}
        for j in (0, 2)[:DELTA_ROWS]  # even positions carry Univ='B'
    ]
    affecting_specs = [
        {"op": "insert", "record": {"Program": f"Prog new {j}", "Degree": "M.S."}}
        for j in range(DELTA_ROWS)
    ]
    # The raw-row oracle must agree with the live layer's own applicator.
    oracle = apply_to_rows(right_rows, "BR", unaffected_specs)
    shadow = Relation.from_records(right_rows, name="BR")
    apply_changes(shadow, unaffected_specs)
    if [dict(zip(("Univ", "Major"), row.values)) for row in shadow.rows] != oracle:
        raise AssertionError("bench oracle disagrees with live.apply_changes")

    unaffected = run_delta_scenario(
        "out-of-provenance delete", unaffected_specs,
        "bench_right", "BR", left_rows, right_rows,
    )
    if unaffected["caches"]["evicted"] != 0 or unaffected["caches"]["rewired"] == 0:
        raise AssertionError(
            "out-of-provenance delete should rewire everything and evict nothing: "
            f"{unaffected['caches']}"
        )
    if not unaffected["cached_report_on_refresh"]:
        raise AssertionError("refresh after an unaffected delta missed the report cache")

    affecting = run_delta_scenario(
        "in-provenance insert", affecting_specs,
        "bench_left", "BL", left_rows, right_rows,
    )
    if affecting["caches"]["evicted"] == 0 or not affecting["report_changed"]:
        raise AssertionError(
            f"in-provenance insert should evict and change the answer: {affecting}"
        )

    fingerprint = run_fingerprint_microbench()

    results = {
        "workload": {
            "rows_per_side": ROWS_PER_SIDE,
            "delta_rows": DELTA_ROWS,
            "delta_ratio": round(DELTA_ROWS / ROWS_PER_SIDE, 4),
        },
        "unaffected_delta": unaffected,
        "affecting_delta": affecting,
        "fingerprint_microbench": fingerprint,
        "min_incremental_speedup": MIN_INCREMENTAL_SPEEDUP,
    }

    print(
        f"[live] out-of-provenance delete ({DELTA_ROWS}/{ROWS_PER_SIDE} rows): "
        f"incremental {unaffected['incremental_seconds']:.4f}s "
        f"(ingest {unaffected['ingest_seconds']:.4f}s + refresh "
        f"{unaffected['refresh_seconds']:.4f}s, "
        f"{unaffected['caches']['rewired']} rewired / 0 evicted) vs "
        f"full recompute {unaffected['full_recompute_seconds']:.4f}s -> "
        f"{unaffected['speedup']}x"
    )
    print(
        f"[live] in-provenance insert: incremental "
        f"{affecting['incremental_seconds']:.4f}s "
        f"({affecting['caches']['evicted']} evicted / "
        f"{affecting['caches']['retained']} retained) vs full recompute "
        f"{affecting['full_recompute_seconds']:.4f}s -> {affecting['speedup']}x, "
        f"answers byte-identical to cold rebuild"
    )
    print(
        f"[live] fingerprint: memoized call "
        f"{fingerprint['memoized_call_seconds'] * 1e9:.0f}ns vs full rehash of "
        f"{MICRO_ROWS} rows {fingerprint['full_rehash_seconds'] * 1e3:.2f}ms -> "
        f"{fingerprint['speedup']}x"
    )

    if unaffected["speedup"] < MIN_INCREMENTAL_SPEEDUP:
        raise AssertionError(
            f"incremental refresh only {unaffected['speedup']:.2f}x faster than "
            f"full recompute (acceptance floor is {MIN_INCREMENTAL_SPEEDUP}x)"
        )
    if fingerprint["speedup"] < MIN_FINGERPRINT_SPEEDUP:
        raise AssertionError(
            f"memoized fingerprint only {fingerprint['speedup']:.1f}x faster than "
            f"a full rehash (floor {MIN_FINGERPRINT_SPEEDUP}x)"
        )

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()

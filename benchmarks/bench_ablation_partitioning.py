"""Ablation: the ingredients of the smart-partitioning optimizer (Section 4).

The paper motivates two design choices beyond plain graph partitioning:

* **edge re-weighting** (reward high-probability matches with ``p * R``,
  penalize low-probability ones with ``p / R``) so the partitioner avoids
  cutting matches that the MILP is likely to select;
* **pre-partitioning** (Algorithm 2: merge tuples connected by
  high-probability matches before partitioning), reported to give a ~200x
  partitioning speedup without hurting quality.

This benchmark measures both: the number of gold evidence pairs cut by the
partitioning, the resulting explanation accuracy, and the partitioning time
with and without each ingredient.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.evaluation import evaluate_explanations, format_table
from repro.graphs.smart_partition import SmartPartitioner
from repro.graphs.weighting import WeightingParams

VARIANTS = (
    ("full (reweight + preparation)", WeightingParams(reward=100.0), True),
    ("no pre-partitioning", WeightingParams(reward=100.0), False),
    ("weak reweighting (R=2)", WeightingParams(reward=2.0), True),
    ("no reweighting (R~1)", WeightingParams(reward=1.0001), True),
)


def test_ablation_partitioning_ingredients(benchmark):
    config = SyntheticConfig(num_tuples=400, difference_ratio=0.2, vocabulary_size=300, seed=21)
    pair = generate_synthetic_pair(config)
    problem, gold = pair.build_problem()
    graph = problem.match_graph()
    rows = []

    def run():
        rows.clear()
        for label, weighting, use_prepartitioning in VARIANTS:
            partitioner = SmartPartitioner(
                batch_size=100, weighting=weighting, use_prepartitioning=use_prepartitioning
            )
            start = time.perf_counter()
            partitioning = partitioner.partition(graph)
            partition_time = time.perf_counter() - start

            # How many *gold* evidence pairs end up split across partitions?
            partition_of = {}
            for part in partitioning:
                for key in part.left_keys:
                    partition_of[("L", key)] = part.index
                for key in part.right_keys:
                    partition_of[("R", key)] = part.index
            cut_gold = sum(
                1
                for left_key, right_key in gold.evidence_pairs
                if partition_of.get(("L", left_key)) != partition_of.get(("R", right_key))
            )

            solver = PartitionedSolver(
                problem,
                SolveConfig(
                    partitioning="smart",
                    batch_size=100,
                    weighting=weighting,
                    use_prepartitioning=use_prepartitioning,
                ),
            )
            explanations = solver.solve()
            accuracy = evaluate_explanations(explanations, gold, problem).f_measure
            rows.append(
                [
                    label,
                    len(partitioning),
                    partitioning.num_supernodes,
                    f"{partition_time * 1000:.1f}",
                    cut_gold,
                    f"{accuracy:.3f}",
                ]
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_partitioning",
        format_table(
            ["variant", "#partitions", "#supernodes", "partition time (ms)",
             "gold pairs cut", "explanation F"],
            rows,
            title="Ablation: smart-partitioning ingredients (n=400, d=0.2, v=300)",
        ),
    )

    full = rows[0]
    no_reweight = rows[-1]
    # Re-weighting should cut no more gold pairs than the unweighted variant.
    assert int(full[4]) <= int(no_reweight[4])
    # Pre-partitioning shrinks the graph handed to the partitioner.
    no_prepartition = rows[1]
    assert int(full[2]) <= int(no_prepartition[2])
